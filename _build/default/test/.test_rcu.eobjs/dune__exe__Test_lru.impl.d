test/test_lru.ml: Alcotest Atomic Gen Hashtbl Item List Lru Memcached QCheck QCheck_alcotest
