test/test_rcu.ml: Alcotest Atomic Domain Format QCheck QCheck_alcotest Rcu String Unix
