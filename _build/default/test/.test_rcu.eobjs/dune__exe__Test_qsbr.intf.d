test/test_qsbr.mli:
