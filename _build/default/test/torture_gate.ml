(* Fault-injected torture gate, run by `dune build @torture` (and wired
   into @runtest). Budget: well under two seconds of run time total —
   each scenario gets one short, seeded, fault-injected burst; any oracle
   violation fails the build. *)

let base =
  {
    Rp_torture.Torture.default_config with
    duration = 0.12;
    readers = 2;
    writers = 1;
    resizers = 1;
    resident_keys = 128;
    churn_keys = 64;
    small_size = 32;
    large_size = 256;
    fault_injection = true;
    seed = 2026;
  }

let failures = ref 0

let run name config =
  let report = Rp_torture.Torture.run config in
  let violations = Rp_torture.Torture.violations report in
  Printf.printf "%-32s checks=%d faults=%d stalls=%d recoveries=%d %s\n%!" name
    report.reader_checks report.faults_injected report.stalls_detected
    report.recoveries
    (if violations = 0 then "ok" else Printf.sprintf "FAIL (%d violations)" violations);
  if violations > 0 then incr failures;
  report

let () =
  (* steady, faults on, across the rp flavours (baselines have their own
     clean-run coverage in the alcotest suite). *)
  ignore (run "steady/rp" base);
  ignore (run "steady/rp-qsbr" { base with table = "rp-qsbr" });
  ignore
    (run "steady/rp-fixed" { base with table = "rp-fixed"; resizers = 0 });
  let crash = run "crash_resizer" { base with scenario = "crash_resizer" } in
  if crash.faults_injected = 0 then begin
    Printf.printf "crash_resizer: no faults fired\n%!";
    incr failures
  end;
  let stalled =
    run "stalled_reader"
      { base with scenario = "stalled_reader"; duration = 0.2 }
  in
  if stalled.stalls_detected = 0 then begin
    Printf.printf "stalled_reader: watchdog never fired\n%!";
    incr failures
  end;
  let torn =
    run "torn_io"
      { base with scenario = "torn_io"; resident_keys = 32; churn_keys = 32 }
  in
  if torn.faults_injected = 0 then begin
    Printf.printf "torn_io: no faults fired\n%!";
    incr failures
  end;
  if !failures > 0 then begin
    Printf.printf "torture gate: %d scenario(s) failed\n%!" !failures;
    exit 1
  end;
  print_endline "torture gate: all scenarios clean"
