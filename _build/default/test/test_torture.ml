(* The torture harness itself: clean runs report zero violations on every
   implementation; configuration validation; report arithmetic. *)

let quick table ~resizers =
  {
    Rp_torture.Torture.default_config with
    table;
    duration = 0.25;
    readers = 2;
    writers = 1;
    resizers;
    resident_keys = 256;
    churn_keys = 128;
    small_size = 64;
    large_size = 1024;
  }

let run_clean table ~resizers () =
  let report = Rp_torture.Torture.run (quick table ~resizers) in
  Alcotest.(check int) "no violations" 0 (Rp_torture.Torture.violations report);
  Alcotest.(check bool) "readers progressed" true (report.reader_checks > 0);
  if resizers > 0 then
    Alcotest.(check bool) "resizes happened" true (report.resize_flips > 0)

let test_fault_injection () =
  let config = { (quick "rp" ~resizers:1) with fault_injection = true } in
  let report = Rp_torture.Torture.run config in
  Alcotest.(check int) "no violations with faults" 0
    (Rp_torture.Torture.violations report)

let test_no_writers_or_resizers () =
  let config = { (quick "rp" ~resizers:0) with writers = 0 } in
  let report = Rp_torture.Torture.run config in
  Alcotest.(check int) "quiet run clean" 0 (Rp_torture.Torture.violations report);
  Alcotest.(check int) "no writer ops" 0 report.writer_ops;
  Alcotest.(check int) "no flips" 0 report.resize_flips

let test_validation () =
  let bad f = Alcotest.(check bool) "rejected" true (match f () with
    | exception Invalid_argument _ -> true
    | _ -> false)
  in
  bad (fun () -> Rp_torture.Torture.run { Rp_torture.Torture.default_config with table = "nope" });
  bad (fun () -> Rp_torture.Torture.run { Rp_torture.Torture.default_config with duration = 0.0 });
  bad (fun () -> Rp_torture.Torture.run { Rp_torture.Torture.default_config with readers = 0 });
  bad (fun () ->
      Rp_torture.Torture.run
        { Rp_torture.Torture.default_config with table = "rp-fixed"; resizers = 1 })

let test_report_rendering () =
  let report =
    {
      Rp_torture.Torture.reader_checks = 10;
      missing_resident = 0;
      wrong_value = 0;
      writer_ops = 5;
      resize_flips = 2;
      elapsed = 1.0;
    }
  in
  let s = Format.asprintf "%a" Rp_torture.Torture.pp_report report in
  Alcotest.(check bool) "mentions PASS" true
    (String.length s > 0
    &&
    let rec find i =
      i + 4 <= String.length s && (String.sub s i 4 = "PASS" || find (i + 1))
    in
    find 0)

let () =
  Alcotest.run "torture"
    [
      ( "clean runs",
        [
          Alcotest.test_case "rp" `Slow (run_clean "rp" ~resizers:1);
          Alcotest.test_case "rp-qsbr" `Slow (run_clean "rp-qsbr" ~resizers:1);
          Alcotest.test_case "rp-fixed" `Slow (run_clean "rp-fixed" ~resizers:0);
          Alcotest.test_case "ddds" `Slow (run_clean "ddds" ~resizers:1);
          Alcotest.test_case "rwlock" `Slow (run_clean "rwlock" ~resizers:1);
          Alcotest.test_case "lock" `Slow (run_clean "lock" ~resizers:1);
          Alcotest.test_case "xu" `Slow (run_clean "xu" ~resizers:1);
        ] );
      ( "modes",
        [
          Alcotest.test_case "fault injection" `Slow test_fault_injection;
          Alcotest.test_case "quiet run" `Slow test_no_writers_or_resizers;
        ] );
      ( "config",
        [
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "report rendering" `Quick test_report_rendering;
        ] );
    ]
