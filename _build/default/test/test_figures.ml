(* Smoke tests for the figure machinery and the mc-benchmark generator:
   tiny durations, structural assertions. These guarantee `bench/main.exe`
   cannot bit-rot silently. *)

let tiny =
  {
    Rp_figures.Figures.duration = 0.05;
    repeats = 1;
    real_threads = [ 1 ];
    model_threads = [ 1; 2; 4 ];
    mc_real_procs = [ 1 ];
    mc_model_procs = [ 1; 2 ];
    entries = 256;
    small_buckets = 512;
    large_buckets = 1024;
    csv_dir = None;
  }

let measured (r : Rp_figures.Figures.figure_result) = r.measured
let projected (r : Rp_figures.Figures.figure_result) = r.projected

let labels (series : Rp_harness.Series.t list) =
  List.map (fun (s : Rp_harness.Series.t) -> s.label) series

let positive_points (series : Rp_harness.Series.t list) =
  List.for_all
    (fun (s : Rp_harness.Series.t) ->
      s.points <> [] && List.for_all (fun (_, y) -> y > 0.0) s.points)
    series

let test_measure_lookup_throughput () =
  let tput =
    Rp_figures.Figures.measure_lookup_throughput
      ~table:(module Rp_baseline.Rp_table.Resizable)
      ~threads:1 ~duration:0.05 ~entries:128 ~buckets:256 ~resize_between:None
  in
  Alcotest.(check bool) "positive throughput" true (tput > 0.0)

let test_measure_with_resizer () =
  let tput =
    Rp_figures.Figures.measure_lookup_throughput
      ~table:(module Rp_baseline.Rp_table.Resizable)
      ~threads:1 ~duration:0.05 ~entries:128 ~buckets:256
      ~resize_between:(Some (256, 512))
  in
  Alcotest.(check bool) "readers progress during resizes" true (tput > 0.0)

let test_fig1 () =
  let r = Rp_figures.Figures.fig1 tiny in
  Alcotest.(check (list string)) "measured labels"
    [ "rp"; "rp-memb"; "ddds"; "rwlock" ]
    (labels (measured r));
  Alcotest.(check (list string)) "projected labels"
    [ "rp"; "ddds"; "rwlock"; "rp-memb" ]
    (labels (projected r));
  Alcotest.(check bool) "all points positive" true
    (positive_points (measured r) && positive_points (projected r));
  (* Projection is calibrated on the measured single-thread point. *)
  List.iter
    (fun (m : Rp_harness.Series.t) ->
      let p =
        List.find (fun (p : Rp_harness.Series.t) -> p.label = m.label) (projected r)
      in
      match (Rp_harness.Series.y_at m 1, Rp_harness.Series.y_at p 1) with
      | Some a, Some b ->
          if Float.abs (a -. b) > 1e-6 then
            Alcotest.failf "calibration mismatch for %s" m.label
      | _ -> Alcotest.fail "missing 1-thread point")
    (measured r)

let test_fig2 () =
  let r = Rp_figures.Figures.fig2 tiny in
  Alcotest.(check (list string)) "labels" [ "rp(resize)"; "ddds(resize)" ]
    (labels (measured r));
  Alcotest.(check bool) "positive" true
    (positive_points (measured r) && positive_points (projected r))

let test_fig3_fig4 () =
  List.iter
    (fun fig ->
      let r = fig tiny in
      Alcotest.(check (list string)) "labels" [ "8k"; "16k"; "resize" ]
        (labels (measured r));
      Alcotest.(check bool) "positive" true
        (positive_points (measured r) && positive_points (projected r)))
    [ Rp_figures.Figures.fig3; Rp_figures.Figures.fig4 ]

let test_fig5 () =
  let r = Rp_figures.Figures.fig5 tiny in
  Alcotest.(check (list string)) "labels"
    [ "RP GET"; "default GET"; "default SET"; "RP SET" ]
    (labels (measured r));
  Alcotest.(check bool) "positive" true
    (positive_points (measured r) && positive_points (projected r))

let test_mc_benchmark_get_hits () =
  let result =
    Memcached.Mc_benchmark.run_backend ~backend:Memcached.Store.Rp
      {
        Memcached.Mc_benchmark.default_config with
        duration = 0.05;
        keyspace = 100;
        mode = Memcached.Mc_benchmark.Get_only;
      }
  in
  Alcotest.(check bool) "made requests" true (result.requests > 0);
  Alcotest.(check int) "prefilled keyspace never misses" 0 result.misses;
  Alcotest.(check int) "hit counts match requests" result.requests result.hits;
  Alcotest.(check bool) "throughput positive" true (result.requests_per_second > 0.0)

let test_mc_benchmark_set_only () =
  let result =
    Memcached.Mc_benchmark.run_backend ~backend:Memcached.Store.Lock
      {
        Memcached.Mc_benchmark.default_config with
        duration = 0.05;
        keyspace = 100;
        mode = Memcached.Mc_benchmark.Set_only;
      }
  in
  Alcotest.(check bool) "made requests" true (result.requests > 0);
  Alcotest.(check int) "sets produce no value responses" 0
    (result.hits + result.misses)

let test_mc_benchmark_mixed () =
  let result =
    Memcached.Mc_benchmark.run_backend ~backend:Memcached.Store.Rp
      {
        Memcached.Mc_benchmark.default_config with
        duration = 0.05;
        keyspace = 100;
        workers = 2;
        mode = Memcached.Mc_benchmark.Mixed 0.5;
      }
  in
  Alcotest.(check bool) "gets happened" true (result.hits > 0);
  Alcotest.(check bool) "requests exceed gets (sets present)" true
    (result.requests > result.hits)

let test_prefill () =
  let store = Memcached.Store.create ~backend:Memcached.Store.Lock () in
  Memcached.Mc_benchmark.prefill store ~keyspace:50 ~value_size:32;
  Alcotest.(check int) "all keys present" 50 (Memcached.Store.items store);
  match Memcached.Store.get store (Rp_workload.Keygen.string_key 7) with
  | Some v -> Alcotest.(check int) "value sized" 32 (String.length v.vdata)
  | None -> Alcotest.fail "prefilled key missing"

let () =
  Alcotest.run "figures"
    [
      ( "measurement",
        [
          Alcotest.test_case "lookup throughput" `Slow test_measure_lookup_throughput;
          Alcotest.test_case "with resizer" `Slow test_measure_with_resizer;
        ] );
      ( "figures",
        [
          Alcotest.test_case "fig1" `Slow test_fig1;
          Alcotest.test_case "fig2" `Slow test_fig2;
          Alcotest.test_case "fig3 and fig4" `Slow test_fig3_fig4;
          Alcotest.test_case "fig5" `Slow test_fig5;
        ] );
      ( "mc-benchmark",
        [
          Alcotest.test_case "get-only hits" `Slow test_mc_benchmark_get_hits;
          Alcotest.test_case "set-only" `Slow test_mc_benchmark_set_only;
          Alcotest.test_case "mixed" `Slow test_mc_benchmark_mixed;
          Alcotest.test_case "prefill" `Quick test_prefill;
        ] );
    ]
