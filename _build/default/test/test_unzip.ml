(* White-box tests of the expansion unzip state machine.

   We build zipped chains by hand (nodes labelled with their destination
   bucket in [hash]), run [Unzip.step] to completion, and check after every
   step the invariant readers rely on: starting from each destination's
   first node, the chain still reaches every node of that destination. *)

let dest (n : (int, string) Rp_list.node) = n.Rp_list.hash

(* Build a chain from a destination pattern, e.g. [0;0;1;0;1;1]. Returns the
   head link and all nodes in order. *)
let build pattern =
  let nodes =
    List.mapi
      (fun i d ->
        Rp_list.make_node ~hash:d ~key:i ~value:(Printf.sprintf "n%d" i)
          ~next:Rp_list.Null ())
      pattern
  in
  let rec link = function
    | a :: (b :: _ as rest) ->
        Atomic.set a.Rp_list.next (Rp_list.Node b);
        link rest
    | [ _ ] | [] -> ()
  in
  link nodes;
  ((match nodes with [] -> Rp_list.Null | n :: _ -> Rp_list.Node n), nodes)

(* Keys of destination [d] reachable from link, in order. *)
let reachable_keys link d =
  let acc = ref [] in
  Rp_list.iter_links
    ~f:(fun n -> if dest n = d then acc := n.Rp_list.key :: !acc)
    link;
  List.rev !acc

let first_of_dest nodes d =
  List.find_opt (fun n -> dest n = d) nodes

let expected_keys pattern d =
  List.mapi (fun i x -> (i, x)) pattern
  |> List.filter_map (fun (i, x) -> if x = d then Some i else None)

(* Run the unzip to completion, checking completeness after every step. *)
let unzip_and_check pattern =
  let head, nodes = build pattern in
  let state = ref (Unzip.start head) in
  let check_complete context =
    List.iter
      (fun d ->
        match first_of_dest nodes d with
        | None -> ()
        | Some first ->
            let got = reachable_keys (Rp_list.Node first) d in
            let want = expected_keys pattern d in
            if got <> want then
              Alcotest.failf "%s: dest %d sees %s, wants %s" context d
                (String.concat "," (List.map string_of_int got))
                (String.concat "," (List.map string_of_int want)))
      [ 0; 1 ]
  in
  check_complete "pre-unzip";
  let steps = ref 0 in
  while not (Unzip.is_done !state) do
    state := Unzip.step ~dest !state;
    incr steps;
    check_complete (Printf.sprintf "after step %d" !steps);
    if !steps > 10 * List.length pattern + 10 then
      Alcotest.fail "unzip did not terminate"
  done;
  (* Post-condition: both sub-chains are precise. *)
  List.iter
    (fun d ->
      match first_of_dest nodes d with
      | None -> ()
      | Some first ->
          if not (Unzip.chain_is_precise ~dest (Rp_list.Node first)) then
            Alcotest.failf "dest %d chain still zipped" d)
    [ 0; 1 ];
  !steps

let test_empty_chain () =
  Alcotest.(check bool) "empty starts done" true
    (Unzip.is_done (Unzip.start Rp_list.Null))

let test_single_node () =
  let head, _ = build [ 0 ] in
  let state = Unzip.step ~dest (Unzip.start head) in
  Alcotest.(check bool) "single node done in one step" true (Unzip.is_done state)

let test_already_precise () =
  let steps = unzip_and_check [ 0; 0; 0; 0 ] in
  Alcotest.(check int) "no splices for precise chain" 1 steps

let test_alternating () = ignore (unzip_and_check [ 0; 1; 0; 1; 0; 1 ])
let test_runs () = ignore (unzip_and_check [ 0; 0; 1; 1; 0; 0; 1; 1 ])
let test_one_interloper () = ignore (unzip_and_check [ 0; 0; 0; 1; 0; 0 ])
let test_other_first () = ignore (unzip_and_check [ 1; 0; 0; 1; 1; 0 ])
let test_paper_example () =
  (* The slides' example: all-bucket chain 1 2 3 4 splitting odd/even. *)
  ignore (unzip_and_check [ 1; 0; 1; 0 ])

let test_step_on_done_is_done () =
  Alcotest.(check bool) "step Done = Done" true
    (Unzip.is_done (Unzip.step ~dest Unzip.Done))

let test_chain_is_precise () =
  let zipped, _ = build [ 0; 1; 0 ] in
  let precise, _ = build [ 1; 1; 1 ] in
  Alcotest.(check bool) "zipped detected" false (Unzip.chain_is_precise ~dest zipped);
  Alcotest.(check bool) "precise detected" true (Unzip.chain_is_precise ~dest precise);
  Alcotest.(check bool) "empty precise" true
    (Unzip.chain_is_precise ~dest Rp_list.Null)

let prop_any_pattern_unzips =
  QCheck.Test.make ~name:"unzip preserves completeness on any pattern" ~count:500
    QCheck.(list_of_size Gen.(int_bound 24) (int_bound 1))
    (fun pattern ->
      ignore (unzip_and_check pattern);
      true)

(* Through the real table: expansion must produce fully precise buckets. *)
let prop_table_expand_precise =
  QCheck.Test.make ~name:"table expansion ends with precise buckets" ~count:100
    QCheck.(pair (int_range 0 200) (int_range 2 5))
    (fun (n_keys, exp) ->
      let t =
        Rp_ht.create ~initial_size:(1 lsl exp) ~auto_resize:false
          ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal ()
      in
      for i = 0 to n_keys - 1 do
        Rp_ht.insert t i i
      done;
      Rp_ht.resize t (1 lsl (exp + 2));
      match Rp_ht.validate t with
      | Ok () -> true
      | Error msg -> QCheck.Test.fail_reportf "%s" msg)

let () =
  Alcotest.run "unzip"
    [
      ( "state machine",
        [
          Alcotest.test_case "empty chain" `Quick test_empty_chain;
          Alcotest.test_case "single node" `Quick test_single_node;
          Alcotest.test_case "already precise" `Quick test_already_precise;
          Alcotest.test_case "alternating pattern" `Quick test_alternating;
          Alcotest.test_case "run pattern" `Quick test_runs;
          Alcotest.test_case "one interloper" `Quick test_one_interloper;
          Alcotest.test_case "other dest first" `Quick test_other_first;
          Alcotest.test_case "paper's example" `Quick test_paper_example;
          Alcotest.test_case "step on Done" `Quick test_step_on_done_is_done;
          Alcotest.test_case "chain_is_precise" `Quick test_chain_is_precise;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_any_pattern_unzips;
          QCheck_alcotest.to_alcotest prop_table_expand_precise;
        ] );
    ]
