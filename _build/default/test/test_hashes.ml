(* Hash functions and power-of-two sizing. *)

let test_splitmix_deterministic () =
  Alcotest.(check int) "same input same output"
    (Rp_hashes.Hashfn.splitmix64 12345)
    (Rp_hashes.Hashfn.splitmix64 12345);
  Alcotest.(check bool) "different inputs differ" true
    (Rp_hashes.Hashfn.splitmix64 1 <> Rp_hashes.Hashfn.splitmix64 2)

let test_hashes_non_negative () =
  for i = -1000 to 1000 do
    if Rp_hashes.Hashfn.splitmix64 i < 0 then
      Alcotest.failf "splitmix64 %d is negative" i
  done;
  List.iter
    (fun s ->
      if Rp_hashes.Hashfn.fnv1a_string s < 0 then
        Alcotest.failf "fnv1a %S is negative" s;
      if Rp_hashes.Hashfn.jenkins_string s < 0 then
        Alcotest.failf "jenkins %S is negative" s)
    [ ""; "a"; "hello world"; String.make 1000 '\xff' ]

let test_fnv1a_bytes_agrees_with_string () =
  let s = "key:0000001234" in
  Alcotest.(check int) "bytes/string agree"
    (Rp_hashes.Hashfn.fnv1a_string s)
    (Rp_hashes.Hashfn.fnv1a_bytes (Bytes.of_string s))

(* Low-bit diffusion matters because bucket selection masks low bits:
   sequential integer keys must spread across buckets near-uniformly. *)
let test_low_bit_diffusion () =
  let buckets = 64 in
  let n = 64 * 100 in
  let counts = Array.make buckets 0 in
  for i = 0 to n - 1 do
    let b =
      Rp_hashes.Size.bucket_of_hash ~hash:(Rp_hashes.Hashfn.of_int i) ~size:buckets
    in
    counts.(b) <- counts.(b) + 1
  done;
  let expected = n / buckets in
  Array.iteri
    (fun b c ->
      if c < expected / 2 || c > expected * 2 then
        Alcotest.failf "bucket %d badly balanced: %d (expected ~%d)" b c expected)
    counts

let test_string_key_diffusion () =
  let buckets = 128 in
  let n = 128 * 50 in
  let counts = Array.make buckets 0 in
  for i = 0 to n - 1 do
    let h = Rp_hashes.Hashfn.fnv1a_string (Printf.sprintf "key:%010d" i) in
    let b = Rp_hashes.Size.bucket_of_hash ~hash:h ~size:buckets in
    counts.(b) <- counts.(b) + 1
  done;
  let expected = n / buckets in
  Array.iteri
    (fun b c ->
      if c < expected / 2 || c > expected * 2 then
        Alcotest.failf "bucket %d badly balanced: %d" b c)
    counts

let test_combine_order_sensitive () =
  Alcotest.(check bool) "combine not symmetric" true
    (Rp_hashes.Hashfn.combine 1 2 <> Rp_hashes.Hashfn.combine 2 1)

let test_power_of_two_predicates () =
  List.iter
    (fun (n, expected) ->
      Alcotest.(check bool)
        (Printf.sprintf "is_power_of_two %d" n)
        expected
        (Rp_hashes.Size.is_power_of_two n))
    [ (1, true); (2, true); (1024, true); (0, false); (-4, false); (3, false); (6, false) ]

let test_next_power_of_two () =
  List.iter
    (fun (n, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "next_power_of_two %d" n)
        expected
        (Rp_hashes.Size.next_power_of_two n))
    [ (0, 1); (1, 1); (2, 2); (3, 4); (5, 8); (1023, 1024); (1024, 1024) ];
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Size.next_power_of_two: negative") (fun () ->
      ignore (Rp_hashes.Size.next_power_of_two (-1)))

let test_log2 () =
  List.iter
    (fun (n, expected) ->
      Alcotest.(check int) (Printf.sprintf "log2 %d" n) expected (Rp_hashes.Size.log2 n))
    [ (1, 0); (2, 1); (8, 3); (1 lsl 20, 20) ];
  Alcotest.check_raises "non-power rejected"
    (Invalid_argument "Size.log2: not a power of two") (fun () ->
      ignore (Rp_hashes.Size.log2 6))

let test_bucket_of_hash () =
  Alcotest.(check int) "masks low bits" 5
    (Rp_hashes.Size.bucket_of_hash ~hash:((3 lsl 10) lor 5) ~size:8)

(* Sibling-bucket property the resize algorithms rely on: an entry in bucket
   b of a table of size 2s lands in bucket (b land (s-1)) after halving. *)
let prop_sibling_buckets =
  QCheck.Test.make ~name:"halving maps buckets to parents" ~count:500
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 10))
    (fun (key, exp) ->
      let size = 1 lsl exp in
      let h = Rp_hashes.Hashfn.of_int key in
      let big = Rp_hashes.Size.bucket_of_hash ~hash:h ~size:(2 * size) in
      let small = Rp_hashes.Size.bucket_of_hash ~hash:h ~size in
      big land (size - 1) = small)

let prop_next_power_is_power =
  QCheck.Test.make ~name:"next_power_of_two returns a covering power" ~count:500
    QCheck.(int_range 0 (1 lsl 30))
    (fun n ->
      let p = Rp_hashes.Size.next_power_of_two n in
      Rp_hashes.Size.is_power_of_two p && p >= max 1 n && (p = 1 || p / 2 < max 1 n))

let () =
  Alcotest.run "hashes"
    [
      ( "functions",
        [
          Alcotest.test_case "splitmix deterministic" `Quick test_splitmix_deterministic;
          Alcotest.test_case "non-negative" `Quick test_hashes_non_negative;
          Alcotest.test_case "fnv1a bytes = string" `Quick
            test_fnv1a_bytes_agrees_with_string;
          Alcotest.test_case "low-bit diffusion (int keys)" `Quick
            test_low_bit_diffusion;
          Alcotest.test_case "low-bit diffusion (string keys)" `Quick
            test_string_key_diffusion;
          Alcotest.test_case "combine order-sensitive" `Quick
            test_combine_order_sensitive;
        ] );
      ( "sizing",
        [
          Alcotest.test_case "is_power_of_two" `Quick test_power_of_two_predicates;
          Alcotest.test_case "next_power_of_two" `Quick test_next_power_of_two;
          Alcotest.test_case "log2" `Quick test_log2;
          Alcotest.test_case "bucket_of_hash" `Quick test_bucket_of_hash;
          QCheck_alcotest.to_alcotest prop_sibling_buckets;
          QCheck_alcotest.to_alcotest prop_next_power_is_power;
        ] );
    ]
