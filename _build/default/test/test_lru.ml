(* Exact-LRU list and cache items. *)

open Memcached

let test_lru_order () =
  let l = Lru.create () in
  let a = Lru.push_front l "a" in
  let _b = Lru.push_front l "b" in
  let _c = Lru.push_front l "c" in
  Alcotest.(check (list string)) "MRU first" [ "c"; "b"; "a" ] (Lru.to_list l);
  Alcotest.(check int) "length" 3 (Lru.length l);
  Lru.touch l a;
  Alcotest.(check (list string)) "touch moves to front" [ "a"; "c"; "b" ]
    (Lru.to_list l);
  Alcotest.(check (option string)) "peek back" (Some "b") (Lru.peek_back l)

let test_lru_pop_back () =
  let l = Lru.create () in
  ignore (Lru.push_front l 1);
  ignore (Lru.push_front l 2);
  Alcotest.(check (option int)) "LRU evicted first" (Some 1) (Lru.pop_back l);
  Alcotest.(check (option int)) "then next" (Some 2) (Lru.pop_back l);
  Alcotest.(check (option int)) "then empty" None (Lru.pop_back l);
  Alcotest.(check int) "empty length" 0 (Lru.length l)

let test_lru_remove_idempotent () =
  let l = Lru.create () in
  let a = Lru.push_front l "a" in
  let b = Lru.push_front l "b" in
  Lru.remove l a;
  Lru.remove l a;
  Alcotest.(check (list string)) "a removed once" [ "b" ] (Lru.to_list l);
  Alcotest.(check int) "length consistent" 1 (Lru.length l);
  (* Touch after remove must not resurrect. *)
  Lru.touch l a;
  Alcotest.(check (list string)) "no resurrection" [ "b" ] (Lru.to_list l);
  Alcotest.(check string) "key accessor" "b" (Lru.key b)

let test_lru_remove_middle () =
  let l = Lru.create () in
  ignore (Lru.push_front l 1);
  let mid = Lru.push_front l 2 in
  ignore (Lru.push_front l 3);
  Lru.remove l mid;
  Alcotest.(check (list int)) "middle gone" [ 3; 1 ] (Lru.to_list l)

(* Model-based: LRU list vs a reference implemented on plain lists. *)
let prop_lru_model =
  QCheck.Test.make ~name:"lru matches list model" ~count:200
    QCheck.(list_of_size Gen.(int_bound 60) (pair (int_bound 2) (int_bound 9)))
    (fun ops ->
      let l = Lru.create () in
      let handles = Hashtbl.create 16 in
      let model = ref [] in
      List.iter
        (fun (kind, k) ->
          match kind with
          | 0 ->
              (* push_front (fresh key only, as the store guarantees) *)
              if not (Hashtbl.mem handles k) then begin
                Hashtbl.replace handles k (Lru.push_front l k);
                model := k :: !model
              end
          | 1 -> (
              match Hashtbl.find_opt handles k with
              | Some node ->
                  Lru.touch l node;
                  if List.mem k !model then
                    model := k :: List.filter (fun x -> x <> k) !model
              | None -> ())
          | _ -> (
              match Hashtbl.find_opt handles k with
              | Some node ->
                  Lru.remove l node;
                  Hashtbl.remove handles k;
                  model := List.filter (fun x -> x <> k) !model
              | None -> ()))
        ops;
      Lru.to_list l = !model && Lru.length l = List.length !model)

let test_item_expiry () =
  let item = Item.make ~flags:0 ~exptime:100.0 ~data:"x" ~now:50.0 () in
  Alcotest.(check bool) "before expiry" false (Item.is_expired item ~now:99.9);
  Alcotest.(check bool) "at expiry" true (Item.is_expired item ~now:100.0);
  Alcotest.(check bool) "after expiry" true (Item.is_expired item ~now:200.0);
  let eternal = Item.make ~flags:0 ~exptime:0.0 ~data:"x" ~now:50.0 () in
  Alcotest.(check bool) "exptime 0 never expires" false
    (Item.is_expired eternal ~now:1e12)

let test_item_cas_unique () =
  let a = Item.make ~flags:0 ~exptime:0.0 ~data:"x" ~now:0.0 () in
  let b = Item.make ~flags:0 ~exptime:0.0 ~data:"x" ~now:0.0 () in
  Alcotest.(check bool) "fresh items get distinct cas" true (a.cas <> b.cas);
  let pinned = Item.make ~cas:a.cas ~flags:0 ~exptime:0.0 ~data:"y" ~now:0.0 () in
  Alcotest.(check int) "cas pinnable" a.cas pinned.cas

let test_item_touch_access () =
  let item = Item.make ~flags:0 ~exptime:0.0 ~data:"x" ~now:1.0 () in
  Alcotest.(check (float 1e-9)) "initial access" 1.0 (Atomic.get item.last_access);
  Item.touch_access item ~now:9.0;
  Alcotest.(check (float 1e-9)) "bumped" 9.0 (Atomic.get item.last_access)

let test_item_size_accounting () =
  let item = Item.make ~flags:0 ~exptime:0.0 ~data:"abcd" ~now:0.0 () in
  Alcotest.(check int) "key + data + overhead"
    (3 + 4 + Item.overhead_bytes)
    (Item.size_bytes ~key:"key" item)

let () =
  Alcotest.run "lru_item"
    [
      ( "lru",
        [
          Alcotest.test_case "order and touch" `Quick test_lru_order;
          Alcotest.test_case "pop back" `Quick test_lru_pop_back;
          Alcotest.test_case "remove idempotent" `Quick test_lru_remove_idempotent;
          Alcotest.test_case "remove middle" `Quick test_lru_remove_middle;
          QCheck_alcotest.to_alcotest prop_lru_model;
        ] );
      ( "item",
        [
          Alcotest.test_case "expiry" `Quick test_item_expiry;
          Alcotest.test_case "cas uniqueness" `Quick test_item_cas_unique;
          Alcotest.test_case "touch access" `Quick test_item_touch_access;
          Alcotest.test_case "size accounting" `Quick test_item_size_accounting;
        ] );
    ]
