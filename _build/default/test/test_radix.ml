(* Relativistic radix tree: functional battery, growth/pruning invariants,
   model-based properties, concurrent readers under growth and churn. *)

let test_empty () =
  let t = Rp_radix.create () in
  Alcotest.(check (option string)) "find on empty" None (Rp_radix.find t 0);
  Alcotest.(check int) "length" 0 (Rp_radix.length t);
  Alcotest.(check int) "height" 1 (Rp_radix.height t);
  Alcotest.(check int) "capacity" 63 (Rp_radix.capacity t)

let test_insert_find () =
  let t = Rp_radix.create () in
  Rp_radix.insert t 0 "zero";
  Rp_radix.insert t 42 "answer";
  Rp_radix.insert t 63 "max-at-h1";
  Alcotest.(check (option string)) "find 0" (Some "zero") (Rp_radix.find t 0);
  Alcotest.(check (option string)) "find 42" (Some "answer") (Rp_radix.find t 42);
  Alcotest.(check (option string)) "find 63" (Some "max-at-h1") (Rp_radix.find t 63);
  Alcotest.(check (option string)) "miss" None (Rp_radix.find t 7);
  Alcotest.(check int) "length" 3 (Rp_radix.length t);
  Alcotest.(check bool) "mem" true (Rp_radix.mem t 42)

let test_overwrite () =
  let t = Rp_radix.create () in
  Rp_radix.insert t 5 "a";
  Rp_radix.insert t 5 "b";
  Alcotest.(check (option string)) "overwritten" (Some "b") (Rp_radix.find t 5);
  Alcotest.(check int) "count stable" 1 (Rp_radix.length t)

let test_growth () =
  let t = Rp_radix.create () in
  Rp_radix.insert t 1 "small";
  Alcotest.(check int) "height 1" 1 (Rp_radix.height t);
  Rp_radix.insert t 100 "needs h2";
  Alcotest.(check int) "grew to 2" 2 (Rp_radix.height t);
  Alcotest.(check (option string)) "old key survives growth" (Some "small")
    (Rp_radix.find t 1);
  Rp_radix.insert t 1_000_000 "needs h4";
  Alcotest.(check int) "grew to 4" 4 (Rp_radix.height t);
  Alcotest.(check (option string)) "all reachable" (Some "needs h2")
    (Rp_radix.find t 100);
  Alcotest.(check (option string)) "beyond-capacity key misses cleanly" None
    (Rp_radix.find t max_int);
  (match Rp_radix.validate t with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invariant: %s" m)

let test_growth_of_empty_tree () =
  let t = Rp_radix.create () in
  Rp_radix.insert t 1_000_000 "deep";
  Alcotest.(check (option string)) "stored" (Some "deep") (Rp_radix.find t 1_000_000);
  (* An empty tree grows by root replacement: no empty-interior chain. *)
  match Rp_radix.validate t with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invariant: %s" m

let test_remove_and_prune () =
  let t = Rp_radix.create () in
  Rp_radix.insert t 100_000 "deep";
  Rp_radix.insert t 3 "shallow";
  Alcotest.(check bool) "remove deep" true (Rp_radix.remove t 100_000);
  Alcotest.(check bool) "remove again" false (Rp_radix.remove t 100_000);
  Alcotest.(check (option string)) "gone" None (Rp_radix.find t 100_000);
  Alcotest.(check (option string)) "other survives" (Some "shallow")
    (Rp_radix.find t 3);
  Alcotest.(check int) "length" 1 (Rp_radix.length t);
  (* Pruning must have removed the emptied deep path. *)
  (match Rp_radix.validate t with
  | Ok () -> ()
  | Error m -> Alcotest.failf "pruning invariant: %s" m);
  Alcotest.(check bool) "remove beyond capacity is false" false
    (Rp_radix.remove t max_int)

let test_negative_key_rejected () =
  let t = Rp_radix.create () in
  Alcotest.check_raises "find" (Invalid_argument "Rp_radix: negative key")
    (fun () -> ignore (Rp_radix.find t (-1)));
  Alcotest.check_raises "insert" (Invalid_argument "Rp_radix: negative key")
    (fun () -> Rp_radix.insert t (-1) "x")

let test_iter_order () =
  let t = Rp_radix.create () in
  List.iter (fun k -> Rp_radix.insert t k (string_of_int k)) [ 500; 3; 77; 64; 0 ];
  Alcotest.(check (list (pair int string)))
    "key order"
    [ (0, "0"); (3, "3"); (64, "64"); (77, "77"); (500, "500") ]
    (Rp_radix.to_list t);
  let sum = Rp_radix.fold t ~init:0 ~f:(fun acc k _ -> acc + k) in
  Alcotest.(check int) "fold" (500 + 3 + 77 + 64 + 0) sum

let test_qsbr_flavoured () =
  let q = Rcu_qsbr.create () in
  let t = Rp_radix.create ~flavour:(Flavour.qsbr q) () in
  for i = 0 to 999 do
    Rp_radix.insert t (i * 17) i
  done;
  for i = 0 to 999 do
    Alcotest.(check (option int)) "qsbr find" (Some i) (Rp_radix.find t (i * 17))
  done

(* Model-based property: tree matches Hashtbl under random op sequences. *)
let prop_matches_model =
  QCheck.Test.make ~name:"radix matches model" ~count:200
    QCheck.(
      list_of_size Gen.(int_bound 100)
        (pair (int_bound 2) (int_bound 1_000_000)))
    (fun ops ->
      let t = Rp_radix.create () in
      let model = Hashtbl.create 32 in
      List.iter
        (fun (kind, k) ->
          match kind with
          | 0 | 1 ->
              Rp_radix.insert t k k;
              Hashtbl.replace model k k
          | _ ->
              let a = Rp_radix.remove t k in
              let b = Hashtbl.mem model k in
              Hashtbl.remove model k;
              if a <> b then QCheck.Test.fail_reportf "remove %d: %b vs %b" k a b)
        ops;
      (match Rp_radix.validate t with
      | Ok () -> ()
      | Error m -> QCheck.Test.fail_reportf "invariant: %s" m);
      Hashtbl.fold (fun k v acc -> acc && Rp_radix.find t k = Some v) model true
      && Rp_radix.length t = Hashtbl.length model)

let prop_to_list_sorted =
  QCheck.Test.make ~name:"to_list is key-sorted and complete" ~count:200
    QCheck.(list_of_size Gen.(int_bound 50) (int_bound 100_000))
    (fun keys ->
      let t = Rp_radix.create () in
      List.iter (fun k -> Rp_radix.insert t k k) keys;
      let listed = Rp_radix.to_list t in
      let expected =
        List.sort_uniq compare keys |> List.map (fun k -> (k, k))
      in
      listed = expected)

(* Concurrency: readers verify resident keys while a writer grows the tree
   through several heights and churns disjoint keys. *)
let test_concurrent_growth () =
  let t = Rp_radix.create () in
  let resident = 256 in
  for i = 0 to resident - 1 do
    Rp_radix.insert t i (i * 3)
  done;
  let stop = Atomic.make false in
  let violations = Atomic.make 0 in
  let readers =
    List.init 2 (fun seed ->
        Domain.spawn (fun () ->
            let prng = Rp_workload.Prng.create ~seed in
            while not (Atomic.get stop) do
              let k = Rp_workload.Prng.below prng resident in
              match Rp_radix.find t k with
              | Some v when v = k * 3 -> ()
              | Some _ | None -> Atomic.incr violations
            done))
  in
  (* Writer: repeatedly deepen the tree and churn deep keys. *)
  for round = 1 to 50 do
    let deep = round * 1_000_003 in
    Rp_radix.insert t deep deep;
    ignore (Rp_radix.remove t deep)
  done;
  Atomic.set stop true;
  List.iter Domain.join readers;
  Alcotest.(check int) "no violations during growth" 0 (Atomic.get violations);
  match Rp_radix.validate t with
  | Ok () -> ()
  | Error m -> Alcotest.failf "invariant: %s" m

let () =
  Alcotest.run "radix"
    [
      ( "basic",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "insert/find" `Quick test_insert_find;
          Alcotest.test_case "overwrite" `Quick test_overwrite;
          Alcotest.test_case "iter order" `Quick test_iter_order;
          Alcotest.test_case "negative keys rejected" `Quick
            test_negative_key_rejected;
          Alcotest.test_case "qsbr flavoured" `Quick test_qsbr_flavoured;
        ] );
      ( "growth and pruning",
        [
          Alcotest.test_case "growth preserves" `Quick test_growth;
          Alcotest.test_case "growth of empty tree" `Quick test_growth_of_empty_tree;
          Alcotest.test_case "remove and prune" `Quick test_remove_and_prune;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_matches_model;
          QCheck_alcotest.to_alcotest prop_to_list_sorted;
        ] );
      ( "concurrency",
        [ Alcotest.test_case "readers during growth" `Slow test_concurrent_growth ] );
    ]
