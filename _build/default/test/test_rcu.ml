(* RCU primitive semantics: registration, nesting, publication, grace
   periods (including cross-domain blocking behaviour), deferred callbacks. *)

let test_register_unregister () =
  let rcu = Rcu.create () in
  Alcotest.(check int) "empty registry" 0 (Rcu.registered_readers rcu);
  let r1 = Rcu.register rcu in
  let r2 = Rcu.register rcu in
  Alcotest.(check int) "two readers" 2 (Rcu.registered_readers rcu);
  Rcu.unregister rcu r1;
  Rcu.unregister rcu r2;
  Alcotest.(check int) "drained" 0 (Rcu.registered_readers rcu)

let test_slots_exhaust () =
  let rcu = Rcu.create ~max_readers:2 () in
  let r1 = Rcu.register rcu in
  let r2 = Rcu.register rcu in
  Alcotest.check_raises "third reader refused" Rcu.Too_many_readers (fun () ->
      ignore (Rcu.register rcu));
  Rcu.unregister rcu r1;
  (* A freed slot is reusable. *)
  let r3 = Rcu.register rcu in
  Rcu.unregister rcu r2;
  Rcu.unregister rcu r3

let test_nesting () =
  let rcu = Rcu.create () in
  let r = Rcu.register rcu in
  Alcotest.(check bool) "initially outside" false (Rcu.in_critical_section r);
  Rcu.read_lock r;
  Rcu.read_lock r;
  Alcotest.(check bool) "nested inside" true (Rcu.in_critical_section r);
  Rcu.read_unlock r;
  Alcotest.(check bool) "still inside" true (Rcu.in_critical_section r);
  Rcu.read_unlock r;
  Alcotest.(check bool) "outside" false (Rcu.in_critical_section r);
  Rcu.unregister rcu r

let test_unbalanced_unlock_rejected () =
  let rcu = Rcu.create () in
  let r = Rcu.register rcu in
  Alcotest.check_raises "unlock outside section"
    (Invalid_argument "Rcu.read_unlock: not in a critical section") (fun () ->
      Rcu.read_unlock r);
  Rcu.unregister rcu r

let test_unregister_inside_section_rejected () =
  let rcu = Rcu.create () in
  let r = Rcu.register rcu in
  Rcu.read_lock r;
  Alcotest.check_raises "unregister inside section"
    (Invalid_argument "Rcu.unregister: reader inside a critical section")
    (fun () -> Rcu.unregister rcu r);
  Rcu.read_unlock r;
  Rcu.unregister rcu r

let test_with_read_releases_on_exception () =
  let rcu = Rcu.create () in
  let r = Rcu.register rcu in
  (try Rcu.with_read r (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "released" false (Rcu.in_critical_section r);
  Rcu.unregister rcu r

let test_synchronize_quiescent () =
  let rcu = Rcu.create () in
  (* No readers at all: must return immediately. *)
  Rcu.synchronize rcu;
  let r = Rcu.register rcu in
  (* Registered but idle reader: still immediate. *)
  Rcu.synchronize rcu;
  let stats = Rcu.stats rcu in
  Alcotest.(check int) "two grace periods" 2 stats.grace_periods;
  Rcu.unregister rcu r

let test_synchronize_rejected_inside_section () =
  let rcu = Rcu.create () in
  let r = Rcu.reader_for_current_domain rcu in
  Rcu.read_lock r;
  (try
     Rcu.synchronize rcu;
     Rcu.read_unlock r;
     Alcotest.fail "synchronize inside read section should raise"
   with Invalid_argument _ -> Rcu.read_unlock r)

(* The defining property: synchronize waits for pre-existing readers and
   returns only after they leave their critical sections. *)
let test_synchronize_waits_for_reader () =
  let rcu = Rcu.create () in
  let reader_in = Atomic.make false in
  let release = Atomic.make false in
  let sync_done = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        let r = Rcu.register rcu in
        Rcu.read_lock r;
        Atomic.set reader_in true;
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done;
        (* synchronize must not have completed while we were inside. *)
        let completed_early = Atomic.get sync_done in
        Rcu.read_unlock r;
        Rcu.unregister rcu r;
        completed_early)
  in
  while not (Atomic.get reader_in) do
    Domain.cpu_relax ()
  done;
  let syncer =
    Domain.spawn (fun () ->
        Rcu.synchronize rcu;
        Atomic.set sync_done true)
  in
  (* Give synchronize ample opportunity to (incorrectly) finish. *)
  Unix.sleepf 0.05;
  Alcotest.(check bool) "synchronize still blocked" false (Atomic.get sync_done);
  Atomic.set release true;
  let completed_early = Domain.join reader in
  Domain.join syncer;
  Alcotest.(check bool) "did not complete during read section" false
    completed_early;
  Alcotest.(check bool) "completed after release" true (Atomic.get sync_done)

(* Readers that begin after synchronize starts must not be waited for:
   lookups arriving during a grace period don't stall it forever. *)
let test_synchronize_ignores_new_readers () =
  let rcu = Rcu.create () in
  let stop = Atomic.make false in
  let churner =
    Domain.spawn (fun () ->
        let r = Rcu.register rcu in
        while not (Atomic.get stop) do
          Rcu.read_lock r;
          Rcu.read_unlock r
        done;
        Rcu.unregister rcu r)
  in
  (* If new readers were waited for, this would likely never finish. *)
  for _ = 1 to 50 do
    Rcu.synchronize rcu
  done;
  Atomic.set stop true;
  Domain.join churner

let test_publication_ordering () =
  (* A reader that dereferences the published cell must observe the fully
     initialised payload. *)
  let rcu = Rcu.create () in
  let cell = Atomic.make None in
  let iterations = 10_000 in
  let stop = Atomic.make false in
  let torn = Atomic.make 0 in
  let reader =
    Domain.spawn (fun () ->
        let r = Rcu.register rcu in
        while not (Atomic.get stop) do
          Rcu.read_lock r;
          (match Rcu.dereference cell with
          | Some (a, b) -> if b <> a * 2 then Atomic.incr torn
          | None -> ());
          Rcu.read_unlock r
        done;
        Rcu.unregister rcu r)
  in
  for i = 1 to iterations do
    Rcu.publish cell (Some (i, i * 2))
  done;
  Atomic.set stop true;
  Domain.join reader;
  Alcotest.(check int) "no torn reads" 0 (Atomic.get torn)

let test_call_rcu_and_barrier () =
  let rcu = Rcu.create () in
  let fired = Atomic.make 0 in
  for _ = 1 to 10 do
    Rcu.call_rcu rcu (fun () -> Atomic.incr fired)
  done;
  Alcotest.(check int) "pending before barrier" 10 (Rcu.pending_callbacks rcu);
  Rcu.barrier rcu;
  Alcotest.(check int) "all fired" 10 (Atomic.get fired);
  Alcotest.(check int) "queue drained" 0 (Rcu.pending_callbacks rcu)

let test_call_rcu_amortized_flush () =
  let rcu = Rcu.create () in
  let fired = Atomic.make 0 in
  (* Exceed the internal threshold; callbacks must fire without an explicit
     barrier. *)
  for _ = 1 to 200 do
    Rcu.call_rcu rcu (fun () -> Atomic.incr fired)
  done;
  Alcotest.(check bool) "auto-flush happened" true (Atomic.get fired > 0);
  Rcu.barrier rcu;
  Alcotest.(check int) "eventually all fired" 200 (Atomic.get fired)

let test_callbacks_run_after_grace_period () =
  let rcu = Rcu.create () in
  let reader_in = Atomic.make false in
  let release = Atomic.make false in
  let fired_during_section = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        let r = Rcu.register rcu in
        Rcu.read_lock r;
        Atomic.set reader_in true;
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done;
        Rcu.read_unlock r;
        Rcu.unregister rcu r)
  in
  while not (Atomic.get reader_in) do
    Domain.cpu_relax ()
  done;
  let fired = Atomic.make false in
  Rcu.call_rcu rcu (fun () -> Atomic.set fired true);
  let barrier_domain = Domain.spawn (fun () -> Rcu.barrier rcu) in
  Unix.sleepf 0.05;
  if Atomic.get fired then Atomic.set fired_during_section true;
  Atomic.set release true;
  Domain.join reader;
  Domain.join barrier_domain;
  Alcotest.(check bool) "not fired during read section" false
    (Atomic.get fired_during_section);
  Alcotest.(check bool) "fired after grace period" true (Atomic.get fired)

let test_dls_reader_reuse () =
  let rcu = Rcu.create () in
  let r1 = Rcu.reader_for_current_domain rcu in
  let r2 = Rcu.reader_for_current_domain rcu in
  Alcotest.(check bool) "same handle returned" true (r1 == r2);
  Alcotest.(check int) "one registration" 1 (Rcu.registered_readers rcu);
  (* read_lock_current / read_unlock_current use the same slot. *)
  Rcu.read_lock_current rcu;
  Alcotest.(check bool) "current in section" true (Rcu.in_critical_section r1);
  Rcu.read_unlock_current rcu;
  Rcu.unregister rcu r1;
  (* After unregister, a fresh handle is created on demand. *)
  let r3 = Rcu.reader_for_current_domain rcu in
  Alcotest.(check int) "re-registered" 1 (Rcu.registered_readers rcu);
  Rcu.unregister rcu r3

let test_independent_flavours () =
  let a = Rcu.create () in
  let b = Rcu.create () in
  let ra = Rcu.reader_for_current_domain a in
  Rcu.read_lock ra;
  (* A reader in flavour [a] must not block flavour [b]'s grace periods. *)
  Rcu.synchronize b;
  Rcu.read_unlock ra;
  let stats_b = Rcu.stats b in
  Alcotest.(check int) "b advanced" 1 stats_b.grace_periods;
  Rcu.unregister a ra

let test_stats_format () =
  let rcu = Rcu.create () in
  Rcu.synchronize rcu;
  let s = Format.asprintf "%a" Rcu.pp_stats (Rcu.stats rcu) in
  Alcotest.(check bool) "stats mention grace_periods" true
    (String.length s >= 13 && String.sub s 0 13 = "grace_periods")

let prop_many_grace_periods =
  QCheck.Test.make ~name:"counted grace periods match synchronize calls"
    ~count:30
    QCheck.(int_range 1 50)
    (fun n ->
      let rcu = Rcu.create () in
      for _ = 1 to n do
        Rcu.synchronize rcu
      done;
      let s = Rcu.stats rcu in
      s.grace_periods = n && s.synchronize_calls = n)

(* --- grace-period stall watchdog --- *)

let test_stall_watchdog_detects_parked_reader () =
  let rcu = Rcu.create ~stall_budget:0.02 () in
  let handler_reports = Atomic.make 0 in
  Rcu.set_stall_handler rcu (Some (fun _ -> Atomic.incr handler_reports));
  let parked = Atomic.make false in
  let parker =
    Domain.spawn (fun () ->
        let r = Rcu.register rcu in
        Rcu.read_lock r;
        Atomic.set parked true;
        Unix.sleepf 0.12;
        Rcu.read_unlock r;
        Rcu.unregister rcu r;
        (Domain.self () :> int))
  in
  while not (Atomic.get parked) do
    Domain.cpu_relax ()
  done;
  Rcu.synchronize rcu;
  let parker_id = Domain.join parker in
  Alcotest.(check bool) "stall detected" true (Rcu.stall_count rcu >= 1);
  Alcotest.(check int) "once per slot per grace period" 1 (Rcu.stall_count rcu);
  Alcotest.(check int) "handler invoked" 1 (Atomic.get handler_reports);
  match Rcu.last_stall rcu with
  | None -> Alcotest.fail "no stall report recorded"
  | Some r ->
      Alcotest.(check int) "names the parked domain" parker_id r.Rcu.owner_domain;
      Alcotest.(check bool) "inside a read section" true (r.Rcu.nesting >= 1);
      Alcotest.(check bool) "waited past the budget" true (r.Rcu.waited >= 0.02);
      let rendered = Format.asprintf "%a" Rcu.pp_stall_report r in
      Alcotest.(check bool) "report renders" true (String.length rendered > 0)

let test_stall_budget_validation () =
  let rcu = Rcu.create () in
  Alcotest.(check (option (float 1e-9))) "off by default" None (Rcu.stall_budget rcu);
  Alcotest.check_raises "non-positive budget rejected"
    (Invalid_argument "Rcu.set_stall_budget: budget <= 0") (fun () ->
      Rcu.set_stall_budget rcu (Some 0.0));
  Rcu.set_stall_budget rcu (Some 1.5);
  Alcotest.(check (option (float 1e-9))) "set" (Some 1.5) (Rcu.stall_budget rcu);
  Rcu.set_stall_budget rcu None;
  Alcotest.(check (option (float 1e-9))) "cleared" None (Rcu.stall_budget rcu)

let test_no_stall_under_budget () =
  let rcu = Rcu.create ~stall_budget:5.0 () in
  let r = Rcu.register rcu in
  Rcu.read_lock r;
  Rcu.read_unlock r;
  Rcu.synchronize rcu;
  Rcu.unregister rcu r;
  Alcotest.(check int) "no stalls" 0 (Rcu.stall_count rcu);
  Alcotest.(check bool) "no report" true (Rcu.last_stall rcu = None)

let () =
  Alcotest.run "rcu"
    [
      ( "registration",
        [
          Alcotest.test_case "register/unregister" `Quick test_register_unregister;
          Alcotest.test_case "slot exhaustion and reuse" `Quick test_slots_exhaust;
          Alcotest.test_case "domain-local handle reuse" `Quick test_dls_reader_reuse;
        ] );
      ( "read sections",
        [
          Alcotest.test_case "nesting" `Quick test_nesting;
          Alcotest.test_case "unbalanced unlock rejected" `Quick
            test_unbalanced_unlock_rejected;
          Alcotest.test_case "unregister inside section rejected" `Quick
            test_unregister_inside_section_rejected;
          Alcotest.test_case "with_read releases on exception" `Quick
            test_with_read_releases_on_exception;
        ] );
      ( "grace periods",
        [
          Alcotest.test_case "quiescent synchronize" `Quick test_synchronize_quiescent;
          Alcotest.test_case "rejected inside read section" `Quick
            test_synchronize_rejected_inside_section;
          Alcotest.test_case "waits for pre-existing reader" `Quick
            test_synchronize_waits_for_reader;
          Alcotest.test_case "ignores new readers" `Quick
            test_synchronize_ignores_new_readers;
          Alcotest.test_case "publication ordering" `Quick test_publication_ordering;
          Alcotest.test_case "independent flavours" `Quick test_independent_flavours;
        ] );
      ( "deferred callbacks",
        [
          Alcotest.test_case "call_rcu + barrier" `Quick test_call_rcu_and_barrier;
          Alcotest.test_case "amortized flush" `Quick test_call_rcu_amortized_flush;
          Alcotest.test_case "run after grace period" `Quick
            test_callbacks_run_after_grace_period;
        ] );
      ( "stall watchdog",
        [
          Alcotest.test_case "detects parked reader" `Slow
            test_stall_watchdog_detects_parked_reader;
          Alcotest.test_case "budget validation" `Quick test_stall_budget_validation;
          Alcotest.test_case "quiet under budget" `Quick test_no_stall_under_budget;
        ] );
      ( "stats",
        [
          Alcotest.test_case "pp_stats" `Quick test_stats_format;
          QCheck_alcotest.to_alcotest prop_many_grace_periods;
        ] );
    ]
