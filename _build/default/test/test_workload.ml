(* Workload generators: PRNG determinism, Zipf distribution shape, key
   generation, operation mixes. *)

let test_prng_deterministic () =
  let a = Rp_workload.Prng.create ~seed:42 in
  let b = Rp_workload.Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rp_workload.Prng.next a)
      (Rp_workload.Prng.next b)
  done

let test_prng_seeds_differ () =
  let a = Rp_workload.Prng.create ~seed:1 in
  let b = Rp_workload.Prng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Rp_workload.Prng.next a = Rp_workload.Prng.next b then incr same
  done;
  Alcotest.(check int) "streams differ" 0 !same

let test_prng_split_independent () =
  let base = Rp_workload.Prng.create ~seed:7 in
  let w0 = Rp_workload.Prng.split base 0 in
  let w1 = Rp_workload.Prng.split base 1 in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Rp_workload.Prng.next w0 = Rp_workload.Prng.next w1 then incr same
  done;
  Alcotest.(check int) "worker streams differ" 0 !same

let test_prng_below_range () =
  let prng = Rp_workload.Prng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let v = Rp_workload.Prng.below prng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "below out of range: %d" v
  done;
  Alcotest.check_raises "bound <= 0" (Invalid_argument "Prng.below: bound <= 0")
    (fun () -> ignore (Rp_workload.Prng.below prng 0))

let test_prng_float_range () =
  let prng = Rp_workload.Prng.create ~seed:4 in
  for _ = 1 to 10_000 do
    let f = Rp_workload.Prng.float prng in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_prng_uniformity () =
  let prng = Rp_workload.Prng.create ~seed:5 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = Rp_workload.Prng.below prng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i c ->
      if abs (c - (n / 10)) > n / 50 then
        Alcotest.failf "bucket %d count %d deviates too much" i c)
    buckets

let test_shuffle_permutes () =
  let prng = Rp_workload.Prng.create ~seed:6 in
  let a = Array.init 100 Fun.id in
  Rp_workload.Prng.shuffle prng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 100 Fun.id) sorted;
  Alcotest.(check bool) "order changed" true (a <> Array.init 100 Fun.id)

let test_zipf_pmf_decreasing () =
  let z = Rp_workload.Zipf.create ~theta:0.99 ~n:100 () in
  for i = 0 to 98 do
    if Rp_workload.Zipf.pmf z i < Rp_workload.Zipf.pmf z (i + 1) then
      Alcotest.failf "pmf not decreasing at %d" i
  done

let test_zipf_pmf_sums_to_one () =
  let z = Rp_workload.Zipf.create ~n:50 () in
  let total = ref 0.0 in
  for i = 0 to 49 do
    total := !total +. Rp_workload.Zipf.pmf z i
  done;
  Alcotest.(check (float 1e-9)) "pmf sums to 1" 1.0 !total

let test_zipf_skew () =
  let z = Rp_workload.Zipf.create ~theta:0.99 ~n:1000 () in
  let prng = Rp_workload.Prng.create ~seed:8 in
  let top10 = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Rp_workload.Zipf.sample z prng < 10 then incr top10
  done;
  (* With theta=0.99 and n=1000, the top-10 ranks carry ~39% of the mass. *)
  let frac = float_of_int !top10 /. float_of_int n in
  if frac < 0.3 || frac > 0.5 then
    Alcotest.failf "top-10 mass %.3f outside [0.3, 0.5]" frac

let test_zipf_theta_zero_uniform () =
  let z = Rp_workload.Zipf.create ~theta:0.0 ~n:10 () in
  for i = 0 to 9 do
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "uniform pmf rank %d" i)
      0.1
      (Rp_workload.Zipf.pmf z i)
  done

let test_zipf_validation () =
  Alcotest.check_raises "n <= 0" (Invalid_argument "Zipf.create: n <= 0") (fun () ->
      ignore (Rp_workload.Zipf.create ~n:0 ()));
  Alcotest.check_raises "theta < 0" (Invalid_argument "Zipf.create: theta < 0")
    (fun () -> ignore (Rp_workload.Zipf.create ~theta:(-1.0) ~n:5 ()))

let test_zipf_sample_range () =
  let z = Rp_workload.Zipf.create ~n:37 () in
  let prng = Rp_workload.Prng.create ~seed:9 in
  for _ = 1 to 10_000 do
    let s = Rp_workload.Zipf.sample z prng in
    if s < 0 || s >= 37 then Alcotest.failf "sample out of range: %d" s
  done

let test_keygen_uniform_range () =
  let kg = Rp_workload.Keygen.create ~keyspace:100 ~seed:1 ~worker:0 () in
  for _ = 1 to 1000 do
    let k = Rp_workload.Keygen.next_key kg in
    if k < 0 || k >= 100 then Alcotest.failf "key out of range: %d" k
  done

let test_keygen_zipfian () =
  let kg =
    Rp_workload.Keygen.create
      ~dist:(Rp_workload.Keygen.Zipfian 0.99)
      ~keyspace:1000 ~seed:1 ~worker:0 ()
  in
  let top = ref 0 in
  for _ = 1 to 10_000 do
    if Rp_workload.Keygen.next_key kg < 10 then incr top
  done;
  Alcotest.(check bool) "skewed towards low ranks" true (!top > 2000)

let test_string_key_format () =
  Alcotest.(check string) "mc-benchmark format" "key:0000001234"
    (Rp_workload.Keygen.string_key 1234);
  Alcotest.(check int) "fixed width" 14
    (String.length (Rp_workload.Keygen.string_key 0))

let test_opmix_lookup_only () =
  let mix = Rp_workload.Opmix.create ~seed:1 ~worker:0 () in
  Alcotest.(check bool) "lookup_only" true (Rp_workload.Opmix.lookup_only mix);
  for _ = 1 to 100 do
    match Rp_workload.Opmix.next mix with
    | Rp_workload.Opmix.Lookup -> ()
    | Rp_workload.Opmix.Insert | Rp_workload.Opmix.Remove ->
        Alcotest.fail "update from lookup-only mix"
  done

let test_opmix_ratio () =
  let mix = Rp_workload.Opmix.create ~update_ratio:0.3 ~seed:1 ~worker:0 () in
  Alcotest.(check bool) "not lookup_only" false (Rp_workload.Opmix.lookup_only mix);
  let updates = ref 0 and inserts = ref 0 and removes = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    match Rp_workload.Opmix.next mix with
    | Rp_workload.Opmix.Lookup -> ()
    | Rp_workload.Opmix.Insert ->
        incr updates;
        incr inserts
    | Rp_workload.Opmix.Remove ->
        incr updates;
        incr removes
  done;
  let frac = float_of_int !updates /. float_of_int n in
  if frac < 0.27 || frac > 0.33 then Alcotest.failf "update fraction %.3f" frac;
  (* Updates split roughly evenly between insert and remove. *)
  let ins_frac = float_of_int !inserts /. float_of_int !updates in
  if ins_frac < 0.45 || ins_frac > 0.55 then
    Alcotest.failf "insert share of updates %.3f" ins_frac

let test_opmix_validation () =
  Alcotest.check_raises "ratio > 1"
    (Invalid_argument "Opmix.create: update_ratio outside [0, 1]") (fun () ->
      ignore (Rp_workload.Opmix.create ~update_ratio:1.5 ~seed:1 ~worker:0 ()))

let prop_below_in_range =
  QCheck.Test.make ~name:"Prng.below always within bound" ~count:500
    QCheck.(pair (int_range 0 10_000) (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let prng = Rp_workload.Prng.create ~seed in
      let v = Rp_workload.Prng.below prng bound in
      v >= 0 && v < bound)

let prop_zipf_samples_in_range =
  QCheck.Test.make ~name:"Zipf samples within [0, n)" ~count:200
    QCheck.(pair (int_range 1 500) (int_range 0 1000))
    (fun (n, seed) ->
      let z = Rp_workload.Zipf.create ~n () in
      let prng = Rp_workload.Prng.create ~seed in
      let s = Rp_workload.Zipf.sample z prng in
      s >= 0 && s < n)

let () =
  Alcotest.run "workload"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_prng_seeds_differ;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "below range" `Quick test_prng_below_range;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "uniformity" `Quick test_prng_uniformity;
          Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
          QCheck_alcotest.to_alcotest prop_below_in_range;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "pmf decreasing" `Quick test_zipf_pmf_decreasing;
          Alcotest.test_case "pmf sums to one" `Quick test_zipf_pmf_sums_to_one;
          Alcotest.test_case "skew mass" `Quick test_zipf_skew;
          Alcotest.test_case "theta zero is uniform" `Quick
            test_zipf_theta_zero_uniform;
          Alcotest.test_case "validation" `Quick test_zipf_validation;
          Alcotest.test_case "sample range" `Quick test_zipf_sample_range;
          QCheck_alcotest.to_alcotest prop_zipf_samples_in_range;
        ] );
      ( "keygen",
        [
          Alcotest.test_case "uniform range" `Quick test_keygen_uniform_range;
          Alcotest.test_case "zipfian skew" `Quick test_keygen_zipfian;
          Alcotest.test_case "string key format" `Quick test_string_key_format;
        ] );
      ( "opmix",
        [
          Alcotest.test_case "lookup only" `Quick test_opmix_lookup_only;
          Alcotest.test_case "update ratio" `Quick test_opmix_ratio;
          Alcotest.test_case "validation" `Quick test_opmix_validation;
        ] );
    ]
