(* Cost model: USL math, profile derivations, figure-shape predictions.

   These tests pin the qualitative claims the projections rest on: RP scales
   linearly, rwlock collapses, DDDS sits between, and the memcached GET gap
   widens with process count. *)

let tput p n = Simcore.Costmodel.throughput p ~threads:n

let test_usl_formula () =
  (* sigma = kappa = 0: perfectly linear. *)
  let p = { Simcore.Costmodel.name = "ideal"; lambda = 10.0; sigma = 0.0; kappa = 0.0 } in
  Alcotest.(check (float 1e-9)) "1 thread" 10.0 (tput p 1);
  Alcotest.(check (float 1e-9)) "16 threads" 160.0 (tput p 16);
  (* Pure serial fraction: Amdahl saturation at lambda/sigma. *)
  let s = { p with Simcore.Costmodel.name = "serial"; sigma = 1.0 } in
  Alcotest.(check (float 1e-9)) "fully serial stays at lambda" 10.0 (tput s 16)

let test_usl_validation () =
  let p = Simcore.Costmodel.rp_fixed ~lambda:1.0 in
  Alcotest.check_raises "threads < 1"
    (Invalid_argument "Costmodel.throughput: threads < 1") (fun () ->
      ignore (tput p 0))

let test_rp_linear () =
  let p = Simcore.Costmodel.rp_fixed ~lambda:1e7 in
  Alcotest.(check (float 1.0)) "16x at 16 threads" 1.6e8 (tput p 16)

let test_rwlock_collapses () =
  let p = Simcore.Costmodel.rwlock ~lambda:1e7 in
  (* The paper's rwlock curve is flat-to-declining: 16 threads must deliver
     less than 2x one thread, and no more than at 4 threads. *)
  Alcotest.(check bool) "no meaningful scaling" true (tput p 16 < 2.0 *. tput p 1);
  Alcotest.(check bool) "declines past saturation" true (tput p 16 <= tput p 4 *. 1.1)

let test_orderings_fig1 () =
  (* Same single-thread rate: at 16 threads RP > DDDS > rwlock. *)
  let lambda = 1e7 in
  let rp = tput (Simcore.Costmodel.rp_fixed ~lambda) 16 in
  let ddds = tput (Simcore.Costmodel.ddds_fixed ~lambda) 16 in
  let rwl = tput (Simcore.Costmodel.rwlock ~lambda) 16 in
  Alcotest.(check bool) "rp > ddds" true (rp > ddds);
  Alcotest.(check bool) "ddds > rwlock" true (ddds > rwl);
  Alcotest.(check bool) "ddds still scales" true (ddds > 5.0 *. lambda)

let test_orderings_fig2 () =
  let lambda = 1e7 in
  let rp = Simcore.Costmodel.rp_resizing ~lambda in
  let ddds = Simcore.Costmodel.ddds_resizing ~lambda in
  (* RP under resize keeps near-linear scaling; DDDS flattens hard. *)
  Alcotest.(check bool) "rp near-linear" true (tput rp 16 > 12.0 *. lambda);
  Alcotest.(check bool) "ddds heavily degraded" true (tput ddds 16 < 6.0 *. lambda);
  Alcotest.(check bool) "rp dominates" true (tput rp 16 > 3.0 *. tput ddds 16)

let test_memcached_profiles () =
  let lambda = 1e5 in
  let rp_get = Simcore.Costmodel.memcached_get_rp ~lambda in
  let lock_get = Simcore.Costmodel.memcached_get_lock ~lambda in
  let lock_set = Simcore.Costmodel.memcached_set_lock ~lambda in
  let rp_set = Simcore.Costmodel.memcached_set_rp ~lambda in
  (* GET gap grows with workers (paper fig 5). *)
  let gap n = tput rp_get n /. tput lock_get n in
  Alcotest.(check bool) "gap widens" true (gap 12 > gap 2 && gap 2 > 1.0);
  (* SET paths both saturate; RP SET at or slightly below default SET. *)
  Alcotest.(check bool) "sets saturate" true
    (tput lock_set 12 < 2.0 *. lambda && tput rp_set 12 < 2.0 *. lambda);
  Alcotest.(check bool) "rp set <= default set" true (tput rp_set 12 <= tput lock_set 12)

let test_machine_derivations () =
  let m = Simcore.Machine.default in
  let sigma =
    Simcore.Machine.serial_fraction m ~shared_rmws_per_op:2 ~op_ns:100.0
  in
  Alcotest.(check bool) "sigma in (0, 1]" true (sigma > 0.0 && sigma <= 1.0);
  (* 2 transfers at 60ns each over a 100ns op saturates the cap. *)
  Alcotest.(check (float 1e-9)) "capped at 1" 1.0 sigma;
  let sigma_light =
    Simcore.Machine.serial_fraction m ~shared_rmws_per_op:1 ~op_ns:600.0
  in
  Alcotest.(check (float 1e-9)) "uncapped value" 0.1 sigma_light;
  Alcotest.check_raises "op_ns <= 0"
    (Invalid_argument "Machine.serial_fraction: op_ns <= 0") (fun () ->
      ignore (Simcore.Machine.serial_fraction m ~shared_rmws_per_op:1 ~op_ns:0.0))

let test_with_lambda () =
  let p = Simcore.Costmodel.rp_fixed ~lambda:1.0 in
  let p2 = Simcore.Costmodel.with_lambda p 5.0 in
  Alcotest.(check (float 1e-9)) "lambda replaced" 5.0 (tput p2 1);
  Alcotest.(check string) "name kept" p.Simcore.Costmodel.name
    p2.Simcore.Costmodel.name

let test_series_shape () =
  let s =
    Simcore.Costmodel.series (Simcore.Costmodel.rp_fixed ~lambda:2.0)
      ~threads:[ 1; 2; 4 ]
  in
  Alcotest.(check string) "label" "rp" s.Rp_harness.Series.label;
  Alcotest.(check (list int)) "xs" [ 1; 2; 4 ] (List.map fst s.Rp_harness.Series.points)

let test_predict_fig1_structure () =
  let series =
    Simcore.Predict.fig1 ~lambda_rp:1e7 ~lambda_ddds:1e7 ~lambda_rwlock:1e7 ()
  in
  Alcotest.(check int) "three curves" 3 (List.length series);
  Alcotest.(check (list string)) "labels" [ "rp"; "ddds"; "rwlock" ]
    (List.map (fun (s : Rp_harness.Series.t) -> s.label) series);
  List.iter
    (fun (s : Rp_harness.Series.t) ->
      Alcotest.(check (list int)) "paper's x axis" [ 1; 2; 4; 8; 16 ]
        (List.map fst s.points))
    series

let test_predict_fig3_ordering () =
  (* 16k tables have shorter chains: calibrated lambdas reflect that, and
     the model must keep the ordering 16k > 8k > resize at every x. *)
  let series =
    Simcore.Predict.fig3 ~lambda_8k:1.0e7 ~lambda_16k:1.15e7 ~lambda_resize:0.85e7 ()
  in
  let y label x =
    let s = List.find (fun (s : Rp_harness.Series.t) -> s.label = label) series in
    Option.get (Rp_harness.Series.y_at s x)
  in
  List.iter
    (fun x ->
      Alcotest.(check bool) "16k >= 8k" true (y "16k" x >= y "8k" x);
      Alcotest.(check bool) "8k >= resize" true (y "8k" x >= y "resize" x))
    [ 1; 2; 4; 8; 16 ]

let test_predict_fig5_structure () =
  let series =
    Simcore.Predict.fig5 ~lambda_get_rp:5e5 ~lambda_get_lock:5e5
      ~lambda_set_lock:2e5 ~lambda_set_rp:2e5 ()
  in
  Alcotest.(check int) "four curves" 4 (List.length series);
  List.iter
    (fun (s : Rp_harness.Series.t) ->
      Alcotest.(check int) "12 points" 12 (List.length s.points))
    series

let prop_throughput_positive =
  QCheck.Test.make ~name:"throughput positive and finite" ~count:300
    QCheck.(
      quad (float_range 1.0 1e9) (float_range 0.0 1.0) (float_range 0.0 0.1)
        (int_range 1 64))
    (fun (lambda, sigma, kappa, n) ->
      let p = { Simcore.Costmodel.name = "q"; lambda; sigma; kappa } in
      let x = tput p n in
      x > 0.0 && Float.is_finite x && x <= lambda *. float_of_int n +. 1e-6)

let () =
  Alcotest.run "simcore"
    [
      ( "usl",
        [
          Alcotest.test_case "formula" `Quick test_usl_formula;
          Alcotest.test_case "validation" `Quick test_usl_validation;
          Alcotest.test_case "with_lambda" `Quick test_with_lambda;
          Alcotest.test_case "series shape" `Quick test_series_shape;
          QCheck_alcotest.to_alcotest prop_throughput_positive;
        ] );
      ( "profiles",
        [
          Alcotest.test_case "rp linear" `Quick test_rp_linear;
          Alcotest.test_case "rwlock collapses" `Quick test_rwlock_collapses;
          Alcotest.test_case "fig1 orderings" `Quick test_orderings_fig1;
          Alcotest.test_case "fig2 orderings" `Quick test_orderings_fig2;
          Alcotest.test_case "memcached profiles" `Quick test_memcached_profiles;
          Alcotest.test_case "machine derivations" `Quick test_machine_derivations;
        ] );
      ( "predict",
        [
          Alcotest.test_case "fig1 structure" `Quick test_predict_fig1_structure;
          Alcotest.test_case "fig3 ordering" `Quick test_predict_fig3_ordering;
          Alcotest.test_case "fig5 structure" `Quick test_predict_fig5_structure;
        ] );
    ]
