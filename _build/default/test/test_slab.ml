(* Slab-class accounting: size ladder, class selection, charge/refund
   bookkeeping, fragmentation, oversize rejection — and the store-level
   behaviours it drives. *)

open Memcached

let test_default_ladder () =
  let slab = Slab.create () in
  let sizes = Slab.chunk_sizes slab in
  Alcotest.(check int) "base chunk" 96 sizes.(0);
  Alcotest.(check int) "max chunk" (1 lsl 20) sizes.(Array.length sizes - 1);
  Alcotest.(check bool) "several classes" true (Slab.class_count slab > 20);
  (* Strictly increasing and 8-byte aligned (except possibly the max). *)
  Array.iteri
    (fun i size ->
      if i > 0 && size <= sizes.(i - 1) then Alcotest.fail "ladder not increasing";
      if i < Array.length sizes - 1 && size land 7 <> 0 then
        Alcotest.failf "chunk %d not 8-byte aligned" size)
    sizes

let test_growth_factor_bounded () =
  let slab = Slab.create ~growth_factor:1.25 () in
  let sizes = Slab.chunk_sizes slab in
  for i = 1 to Array.length sizes - 2 do
    let ratio = float_of_int sizes.(i) /. float_of_int sizes.(i - 1) in
    if ratio > 1.35 then
      Alcotest.failf "growth %d -> %d exceeds factor headroom" sizes.(i - 1) sizes.(i)
  done

let test_class_selection () =
  let slab = Slab.create () in
  (match Slab.class_of_size slab 1 with
  | Some 0 -> ()
  | _ -> Alcotest.fail "tiny item not in class 0");
  (match Slab.class_of_size slab 96 with
  | Some 0 -> ()
  | _ -> Alcotest.fail "exact base size not in class 0");
  (match Slab.class_of_size slab 97 with
  | Some 1 -> ()
  | _ -> Alcotest.fail "97 bytes not in class 1");
  (match Slab.class_of_size slab (1 lsl 20) with
  | Some _ -> ()
  | None -> Alcotest.fail "max-size item refused");
  Alcotest.(check bool) "oversize refused" true
    (Slab.class_of_size slab ((1 lsl 20) + 1) = None)

let test_charge_refund_roundtrip () =
  let slab = Slab.create () in
  Alcotest.(check int) "empty allocated" 0 (Slab.allocated_bytes slab);
  let chunk = Option.get (Slab.charge slab 100) in
  Alcotest.(check bool) "chunk covers size" true (chunk >= 100);
  Alcotest.(check int) "allocated = chunk" chunk (Slab.allocated_bytes slab);
  Alcotest.(check int) "requested = size" 100 (Slab.requested_bytes slab);
  Alcotest.(check bool) "fragmentation positive" true (Slab.fragmentation slab > 0.0);
  Slab.refund slab 100;
  Alcotest.(check int) "allocated back to 0" 0 (Slab.allocated_bytes slab);
  Alcotest.(check int) "requested back to 0" 0 (Slab.requested_bytes slab);
  Alcotest.(check (float 1e-9)) "fragmentation 0 when empty" 0.0
    (Slab.fragmentation slab)

let test_charge_oversize () =
  let slab = Slab.create () in
  Alcotest.(check bool) "oversize charge refused" true
    (Slab.charge slab (2 lsl 20) = None);
  Alcotest.(check int) "nothing accounted" 0 (Slab.allocated_bytes slab)

let test_stats_per_class () =
  let slab = Slab.create () in
  ignore (Slab.charge slab 50);
  ignore (Slab.charge slab 60);
  ignore (Slab.charge slab 500);
  let stats = Slab.stats slab in
  Alcotest.(check int) "two classes in use" 2 (List.length stats);
  let small = List.hd stats in
  Alcotest.(check int) "small class chunks" 2 small.Slab.used_chunks;
  Alcotest.(check int) "small class bytes" 110 small.Slab.used_bytes

let test_validation () =
  Alcotest.check_raises "factor <= 1"
    (Invalid_argument "Slab.create: growth_factor <= 1") (fun () ->
      ignore (Slab.create ~growth_factor:1.0 ()));
  Alcotest.check_raises "base <= 0"
    (Invalid_argument "Slab.create: base_chunk <= 0") (fun () ->
      ignore (Slab.create ~base_chunk:0 ()))

let prop_charge_refund_balance =
  QCheck.Test.make ~name:"interleaved charges/refunds balance to zero" ~count:200
    QCheck.(list_of_size Gen.(int_bound 60) (int_range 1 100_000))
    (fun sizes ->
      let slab = Slab.create () in
      List.iter (fun size -> ignore (Slab.charge slab size)) sizes;
      let allocated = Slab.allocated_bytes slab in
      let requested = Slab.requested_bytes slab in
      let expected_requested = List.fold_left ( + ) 0 sizes in
      List.iter (fun size -> Slab.refund slab size) sizes;
      allocated >= requested
      && requested = expected_requested
      && Slab.allocated_bytes slab = 0
      && Slab.requested_bytes slab = 0)

let prop_chunk_covers =
  QCheck.Test.make ~name:"selected chunk always covers the item" ~count:500
    QCheck.(int_range 1 (1 lsl 20))
    (fun size ->
      let slab = Slab.create () in
      match Slab.class_of_size slab size with
      | None -> false
      | Some cls ->
          let chunk = Slab.chunk_size_of slab cls in
          chunk >= size && (cls = 0 || Slab.chunk_size_of slab (cls - 1) < size))

(* --- store-level behaviour driven by the slab --- *)

let test_store_rejects_oversize () =
  let store = Store.create ~backend:Store.Rp () in
  let result =
    Store.set store ~key:"big" ~flags:0 ~exptime:0 ~data:(String.make (2 lsl 20) 'x')
  in
  Alcotest.(check bool) "too large" true (result = Store.Too_large);
  Alcotest.(check int) "nothing stored" 0 (Store.items store)

let test_store_append_cannot_exceed_max () =
  let store = Store.create ~backend:Store.Lock () in
  let half = String.make (600 * 1024) 'a' in
  Alcotest.(check bool) "first half stored" true
    (Store.set store ~key:"k" ~flags:0 ~exptime:0 ~data:half = Store.Stored);
  Alcotest.(check bool) "append past 1MiB refused" true
    (Store.append store ~key:"k" ~data:half = Store.Too_large);
  (match Store.get store "k" with
  | Some v -> Alcotest.(check int) "original intact" (600 * 1024) (String.length v.vdata)
  | None -> Alcotest.fail "original lost")

let test_store_reports_fragmentation () =
  let store = Store.create ~backend:Store.Rp () in
  ignore (Store.set store ~key:"k" ~flags:0 ~exptime:0 ~data:"tiny");
  Alcotest.(check bool) "bytes >= requested" true
    (Store.bytes store > String.length "tiny");
  Alcotest.(check bool) "fragmentation reported" true
    (Store.fragmentation store > 0.0);
  Alcotest.(check int) "one class in use" 1 (List.length (Store.slab_stats store));
  let stats = Store.stats store in
  Alcotest.(check bool) "stats expose slab rows" true
    (List.mem_assoc "slab_fragmentation" stats
    && List.mem_assoc "bytes_requested" stats)

let test_server_maps_too_large () =
  let store = Store.create ~backend:Store.Rp () in
  let big : Protocol.storage =
    {
      key = "k";
      flags = 0;
      exptime = 0;
      noreply = false;
      data = String.make (2 lsl 20) 'x';
    }
  in
  (match Server.handle store (Protocol.Set big) with
  | Some (Protocol.Server_error _) -> ()
  | _ -> Alcotest.fail "text protocol should report SERVER_ERROR");
  let breq : Binary_protocol.request =
    {
      opcode = Binary_protocol.Set;
      key = "k";
      value = String.make (2 lsl 20) 'x';
      extras = Binary_protocol.set_extras ~flags:0 ~exptime:0;
      opaque = 0;
      cas = 0;
    }
  in
  match Binary_server.handle store breq with
  | [ r ] ->
      Alcotest.(check bool) "binary maps to Value_too_large" true
        (r.status = Binary_protocol.Value_too_large)
  | _ -> Alcotest.fail "binary reply shape"

let () =
  Alcotest.run "slab"
    [
      ( "ladder",
        [
          Alcotest.test_case "default ladder" `Quick test_default_ladder;
          Alcotest.test_case "growth bounded" `Quick test_growth_factor_bounded;
          Alcotest.test_case "class selection" `Quick test_class_selection;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "charge/refund round trip" `Quick
            test_charge_refund_roundtrip;
          Alcotest.test_case "oversize charge" `Quick test_charge_oversize;
          Alcotest.test_case "per-class stats" `Quick test_stats_per_class;
          QCheck_alcotest.to_alcotest prop_charge_refund_balance;
          QCheck_alcotest.to_alcotest prop_chunk_covers;
        ] );
      ( "store integration",
        [
          Alcotest.test_case "oversize rejected" `Quick test_store_rejects_oversize;
          Alcotest.test_case "append bounded" `Quick
            test_store_append_cannot_exceed_max;
          Alcotest.test_case "fragmentation reported" `Quick
            test_store_reports_fragmentation;
          Alcotest.test_case "protocol mapping" `Quick test_server_maps_too_large;
        ] );
    ]
