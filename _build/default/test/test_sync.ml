(* Synchronization substrate: rwlock (both variants), brlock, seqlock,
   spinlock, backoff, barrier — including concurrent mutual-exclusion and
   consistency checks. *)

let test_backoff_growth () =
  let b = Rp_sync.Backoff.create ~min_wait:2 ~max_wait:16 () in
  Alcotest.(check int) "starts at min" 2 (Rp_sync.Backoff.current b);
  Rp_sync.Backoff.once b;
  Alcotest.(check int) "doubles" 4 (Rp_sync.Backoff.current b);
  Rp_sync.Backoff.once b;
  Rp_sync.Backoff.once b;
  Rp_sync.Backoff.once b;
  Alcotest.(check int) "saturates at max" 16 (Rp_sync.Backoff.current b);
  Rp_sync.Backoff.reset b;
  Alcotest.(check int) "reset to min" 2 (Rp_sync.Backoff.current b)

let test_backoff_validation () =
  Alcotest.check_raises "min_wait < 1"
    (Invalid_argument "Backoff.create: min_wait < 1") (fun () ->
      ignore (Rp_sync.Backoff.create ~min_wait:0 ()));
  Alcotest.check_raises "max < min"
    (Invalid_argument "Backoff.create: max_wait < min_wait") (fun () ->
      ignore (Rp_sync.Backoff.create ~min_wait:8 ~max_wait:4 ()))

let test_spinlock_basic () =
  let l = Rp_sync.Spinlock.create () in
  Alcotest.(check bool) "initially free" false (Rp_sync.Spinlock.is_locked l);
  Rp_sync.Spinlock.acquire l;
  Alcotest.(check bool) "held" true (Rp_sync.Spinlock.is_locked l);
  Alcotest.(check bool) "try fails when held" false (Rp_sync.Spinlock.try_acquire l);
  Rp_sync.Spinlock.release l;
  Alcotest.(check bool) "try succeeds when free" true (Rp_sync.Spinlock.try_acquire l);
  Rp_sync.Spinlock.release l

let test_spinlock_releases_on_exception () =
  let l = Rp_sync.Spinlock.create () in
  (try Rp_sync.Spinlock.with_lock l (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check bool) "released" false (Rp_sync.Spinlock.is_locked l)

(* Mutual exclusion: concurrent increments of an unprotected counter under
   the lock must not lose updates. *)
let test_spinlock_mutual_exclusion () =
  let l = Rp_sync.Spinlock.create () in
  let counter = ref 0 in
  let per_domain = 20_000 in
  let domains =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Rp_sync.Spinlock.with_lock l (fun () -> incr counter)
            done))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "no lost updates" (3 * per_domain) !counter

let rwlock_variants = [ ("spin", Rp_sync.Rwlock.create); ("blocking", Rp_sync.Rwlock.create_blocking) ]

let test_rwlock_basic make () =
  let l = make () in
  Rp_sync.Rwlock.read_lock l;
  Rp_sync.Rwlock.read_lock l;
  Alcotest.(check int) "two readers" 2 (Rp_sync.Rwlock.readers l);
  Alcotest.(check bool) "writer blocked" false (Rp_sync.Rwlock.try_write_lock l);
  Rp_sync.Rwlock.read_unlock l;
  Rp_sync.Rwlock.read_unlock l;
  Alcotest.(check bool) "writer acquires when drained" true
    (Rp_sync.Rwlock.try_write_lock l);
  Alcotest.(check bool) "reader blocked by writer" false
    (Rp_sync.Rwlock.try_read_lock l);
  Rp_sync.Rwlock.write_unlock l;
  Alcotest.(check bool) "reader acquires after writer" true
    (Rp_sync.Rwlock.try_read_lock l);
  Rp_sync.Rwlock.read_unlock l

let test_rwlock_writer_exclusion make () =
  let l = make () in
  let value = ref (0, 0) in
  let inconsistent = Atomic.make 0 in
  let stop = Atomic.make false in
  let readers =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              Rp_sync.Rwlock.with_read l (fun () ->
                  let a, b = !value in
                  if b <> a * 2 then Atomic.incr inconsistent)
            done))
  in
  for i = 1 to 20_000 do
    Rp_sync.Rwlock.with_write l (fun () -> value := (i, i * 2))
  done;
  Atomic.set stop true;
  List.iter Domain.join readers;
  Alcotest.(check int) "no torn read observed" 0 (Atomic.get inconsistent)

let test_brlock_basic () =
  let l = Rp_sync.Brlock.create ~slots:4 () in
  Alcotest.(check int) "slots" 4 (Rp_sync.Brlock.slots l);
  let slot = Rp_sync.Brlock.read_lock l in
  Rp_sync.Brlock.read_unlock l slot;
  Rp_sync.Brlock.write_lock l;
  Rp_sync.Brlock.write_unlock l;
  Rp_sync.Brlock.with_read l (fun () -> ());
  Rp_sync.Brlock.with_write l (fun () -> ())

let test_brlock_writer_waits_for_readers () =
  let l = Rp_sync.Brlock.create ~slots:2 () in
  let value = ref (0, 0) in
  let inconsistent = Atomic.make 0 in
  let stop = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          Rp_sync.Brlock.with_read l (fun () ->
              let a, b = !value in
              if b <> -a then Atomic.incr inconsistent)
        done)
  in
  for i = 1 to 10_000 do
    Rp_sync.Brlock.with_write l (fun () -> value := (i, -i))
  done;
  Atomic.set stop true;
  Domain.join reader;
  Alcotest.(check int) "no torn read under brlock" 0 (Atomic.get inconsistent)

let test_seqlock_basic () =
  let s = Rp_sync.Seqlock.create () in
  Alcotest.(check int) "starts even" 0 (Rp_sync.Seqlock.sequence s);
  let snap = Rp_sync.Seqlock.read_begin s in
  Alcotest.(check bool) "validates with no writer" true
    (Rp_sync.Seqlock.read_validate s snap);
  Rp_sync.Seqlock.write_begin s;
  Alcotest.(check bool) "stale snapshot rejected" false
    (Rp_sync.Seqlock.read_validate s snap);
  Rp_sync.Seqlock.write_end s;
  Alcotest.(check int) "even after write" 2 (Rp_sync.Seqlock.sequence s)

let test_seqlock_read_retries () =
  let s = Rp_sync.Seqlock.create () in
  let value = ref (0, 0) in
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        let i = ref 0 in
        while not (Atomic.get stop) do
          incr i;
          Rp_sync.Seqlock.write_begin s;
          value := (!i, !i * 3);
          Rp_sync.Seqlock.write_end s
        done)
  in
  let torn = ref 0 in
  for _ = 1 to 50_000 do
    let a, b = Rp_sync.Seqlock.read s (fun () -> !value) in
    if b <> a * 3 then incr torn
  done;
  Atomic.set stop true;
  Domain.join writer;
  Alcotest.(check int) "seqlock reads consistent" 0 !torn

let test_barrier_sync () =
  let n = 4 in
  let barrier = Rp_sync.Barrier_sync.create n in
  Alcotest.(check int) "parties" n (Rp_sync.Barrier_sync.parties barrier);
  let after = Atomic.make 0 in
  let before_max = Atomic.make 0 in
  let domains =
    List.init n (fun _ ->
        Domain.spawn (fun () ->
            (* Every domain sees all arrivals before anyone proceeds. *)
            Rp_sync.Barrier_sync.await barrier;
            ignore (Atomic.fetch_and_add after 1);
            Rp_sync.Barrier_sync.await barrier;
            (* Reusable: second phase works too. *)
            let seen = Atomic.get after in
            if seen > Atomic.get before_max then Atomic.set before_max seen))
  in
  List.iter Domain.join domains;
  Alcotest.(check int) "all proceeded" n (Atomic.get after);
  Alcotest.(check int) "phase two saw full count" n (Atomic.get before_max)

let test_barrier_validation () =
  Alcotest.check_raises "zero parties"
    (Invalid_argument "Barrier_sync.create: parties < 1") (fun () ->
      ignore (Rp_sync.Barrier_sync.create 0))

(* Sequential model check: try_acquire succeeds iff the model says the lock
   is free, and the final observable state matches the model. *)
let prop_spinlock_try_acquire_consistent =
  QCheck.Test.make ~name:"spinlock matches a bool model" ~count:100
    QCheck.(list_of_size Gen.(int_bound 30) bool)
    (fun ops ->
      let l = Rp_sync.Spinlock.create () in
      let held = ref false in
      List.for_all
        (fun acquire ->
          if acquire then begin
            let got = Rp_sync.Spinlock.try_acquire l in
            let expected = not !held in
            if got then held := true;
            got = expected
          end
          else begin
            if !held then begin
              Rp_sync.Spinlock.release l;
              held := false
            end;
            true
          end)
        ops
      && Rp_sync.Spinlock.is_locked l = !held)

let () =
  let rwlock_tests =
    List.concat_map
      (fun (name, make) ->
        [
          Alcotest.test_case (name ^ ": basic") `Quick (test_rwlock_basic make);
          Alcotest.test_case (name ^ ": writer exclusion") `Quick
            (test_rwlock_writer_exclusion make);
        ])
      rwlock_variants
  in
  Alcotest.run "sync"
    [
      ( "backoff",
        [
          Alcotest.test_case "growth and reset" `Quick test_backoff_growth;
          Alcotest.test_case "validation" `Quick test_backoff_validation;
        ] );
      ( "spinlock",
        [
          Alcotest.test_case "basic" `Quick test_spinlock_basic;
          Alcotest.test_case "releases on exception" `Quick
            test_spinlock_releases_on_exception;
          Alcotest.test_case "mutual exclusion" `Quick test_spinlock_mutual_exclusion;
          QCheck_alcotest.to_alcotest prop_spinlock_try_acquire_consistent;
        ] );
      ("rwlock", rwlock_tests);
      ( "brlock",
        [
          Alcotest.test_case "basic" `Quick test_brlock_basic;
          Alcotest.test_case "writer waits for readers" `Quick
            test_brlock_writer_waits_for_readers;
        ] );
      ( "seqlock",
        [
          Alcotest.test_case "basic" `Quick test_seqlock_basic;
          Alcotest.test_case "reads retry across writes" `Quick
            test_seqlock_read_retries;
        ] );
      ( "barrier",
        [
          Alcotest.test_case "synchronizes and reuses" `Quick test_barrier_sync;
          Alcotest.test_case "validation" `Quick test_barrier_validation;
        ] );
    ]
