bin/memcached_server.mli:
