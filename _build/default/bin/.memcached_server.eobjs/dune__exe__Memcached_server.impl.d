bin/memcached_server.ml: Arg Cmd Cmdliner Memcached Printf Sys Term Unix
