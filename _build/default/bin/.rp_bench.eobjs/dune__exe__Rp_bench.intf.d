bin/rp_bench.mli:
