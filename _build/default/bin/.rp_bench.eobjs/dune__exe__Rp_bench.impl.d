bin/rp_bench.ml: Arg Cmd Cmdliner List Rp_figures String Term Unix
