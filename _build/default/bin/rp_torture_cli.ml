(* rcutorture-style stress CLI: exit 0 on a clean run, 1 on any violation. *)

open Cmdliner

let table_arg =
  let doc =
    "Implementation under test: " ^ String.concat ", " Rp_torture.Torture.table_names
  in
  Arg.(
    value
    & opt (enum (List.map (fun n -> (n, n)) Rp_torture.Torture.table_names)) "rp"
    & info [ "table" ] ~docv:"TABLE" ~doc)

let scenario_arg =
  let doc =
    "Fault scenario: " ^ String.concat ", " Rp_torture.Torture.scenario_names
    ^ ". The crash/stall/torn scenarios require --table rp."
  in
  Arg.(
    value
    & opt
        (enum (List.map (fun n -> (n, n)) Rp_torture.Torture.scenario_names))
        "steady"
    & info [ "scenario" ] ~docv:"SCENARIO" ~doc)

let duration_arg =
  Arg.(value & opt float 2.0 & info [ "d"; "duration" ] ~docv:"SECONDS" ~doc:"Run time.")

let readers_arg =
  Arg.(value & opt int 2 & info [ "readers" ] ~docv:"N" ~doc:"Oracle reader domains.")

let writers_arg =
  Arg.(value & opt int 1 & info [ "writers" ] ~docv:"N" ~doc:"Churn writer domains.")

let resizers_arg =
  Arg.(value & opt int 1 & info [ "resizers" ] ~docv:"N" ~doc:"Resize-flipping domains.")

let resident_arg =
  Arg.(value & opt int 1024 & info [ "resident" ] ~docv:"N" ~doc:"Always-present keys.")

let churn_arg =
  Arg.(value & opt int 512 & info [ "churn" ] ~docv:"N" ~doc:"Churned keyspace size.")

let faults_arg =
  Arg.(value & flag & info [ "faults" ] ~doc:"Inject random microsecond stalls.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let run table scenario duration readers writers resizers resident churn faults seed =
  let config =
    {
      Rp_torture.Torture.default_config with
      table;
      scenario;
      duration;
      readers;
      writers;
      resizers = (if table = "rp-fixed" then 0 else resizers);
      resident_keys = resident;
      churn_keys = churn;
      fault_injection = faults;
      seed;
    }
  in
  Printf.printf
    "torturing %s (%s) for %.1fs: %d readers, %d writers, %d resizers%s\n%!"
    table scenario duration readers writers config.resizers
    (if faults then " (+fault injection)" else "");
  let report = Rp_torture.Torture.run config in
  Format.printf "%a@." Rp_torture.Torture.pp_report report;
  if Rp_torture.Torture.violations report > 0 then exit 1

let cmd =
  let doc = "stress-test the relativistic hash table and its baselines" in
  Cmd.v (Cmd.info "rp_torture" ~doc)
    Term.(
      const run $ table_arg $ scenario_arg $ duration_arg $ readers_arg $ writers_arg
      $ resizers_arg $ resident_arg $ churn_arg $ faults_arg $ seed_arg)

let () = exit (Cmd.eval cmd)
