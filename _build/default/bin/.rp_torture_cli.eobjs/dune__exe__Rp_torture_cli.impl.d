bin/rp_torture_cli.ml: Arg Cmd Cmdliner Format List Printf Rp_torture String Term
