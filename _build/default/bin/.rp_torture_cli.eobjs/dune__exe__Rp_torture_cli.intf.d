bin/rp_torture_cli.mli:
