(* CLI for regenerating individual paper figures with custom parameters. *)

open Cmdliner

let figure_names = [ "fig1"; "fig2"; "fig3"; "fig4"; "fig5"; "ablations"; "all" ]

let figure_arg =
  let doc =
    "Figure to regenerate: " ^ String.concat ", " figure_names ^ "."
  in
  Arg.(value & pos 0 (enum (List.map (fun n -> (n, n)) figure_names)) "all"
       & info [] ~docv:"FIGURE" ~doc)

let duration_arg =
  let doc = "Seconds of measurement per data point." in
  Arg.(value & opt float 0.5 & info [ "d"; "duration" ] ~docv:"SECONDS" ~doc)

let threads_arg =
  let doc = "Reader-thread counts to execute for real (comma separated)." in
  Arg.(value & opt (list int) [ 1; 2; 4 ] & info [ "t"; "threads" ] ~docv:"N,N,..." ~doc)

let entries_arg =
  let doc = "Number of resident table entries for the microbenchmark figures." in
  Arg.(value & opt int 4096 & info [ "e"; "entries" ] ~docv:"N" ~doc)

let buckets_arg =
  let doc = "Small (\"8k\") bucket count; the large size is twice this." in
  Arg.(value & opt int 8192 & info [ "b"; "buckets" ] ~docv:"N" ~doc)

let csv_arg =
  let doc = "Directory to write CSV series into." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)

let run figure duration threads entries buckets csv_dir =
  let options =
    {
      Rp_figures.Figures.default_options with
      duration;
      real_threads = threads;
      mc_real_procs = threads;
      entries;
      small_buckets = buckets;
      large_buckets = 2 * buckets;
      csv_dir;
    }
  in
  (match csv_dir with
  | Some dir -> ( try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ())
  | None -> ());
  let print = Rp_figures.Figures.print_figure options in
  match figure with
  | "fig1" ->
      print "fig1" ~title:"Figure 1: fixed-size baseline" ~x_label:"readers"
        (Rp_figures.Figures.fig1 options)
  | "fig2" ->
      print "fig2" ~title:"Figure 2: continuous resizing" ~x_label:"readers"
        (Rp_figures.Figures.fig2 options)
  | "fig3" ->
      print "fig3" ~title:"Figure 3: RP resize vs fixed" ~x_label:"readers"
        (Rp_figures.Figures.fig3 options)
  | "fig4" ->
      print "fig4" ~title:"Figure 4: DDDS resize vs fixed" ~x_label:"readers"
        (Rp_figures.Figures.fig4 options)
  | "fig5" ->
      print "fig5" ~title:"Figure 5: memcached" ~x_label:"processes"
        (Rp_figures.Figures.fig5 options)
  | "ablations" -> Rp_figures.Ablations.run_all ()
  | _ ->
      Rp_figures.Figures.run_all options;
      Rp_figures.Ablations.run_all ()

let cmd =
  let doc = "regenerate the paper's evaluation figures" in
  let info = Cmd.info "rp_bench" ~doc in
  Cmd.v info
    Term.(
      const run $ figure_arg $ duration_arg $ threads_arg $ entries_arg
      $ buckets_arg $ csv_arg)

let () = exit (Cmd.eval cmd)
