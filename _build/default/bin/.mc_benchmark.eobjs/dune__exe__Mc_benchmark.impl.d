bin/mc_benchmark.ml: Arg Array Cmd Cmdliner Format Memcached Printf Rp_harness Rp_workload String Term
