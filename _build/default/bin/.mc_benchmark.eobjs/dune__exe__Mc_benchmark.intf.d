bin/mc_benchmark.mli:
