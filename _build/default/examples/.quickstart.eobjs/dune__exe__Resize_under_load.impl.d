examples/resize_under_load.ml: Atomic Core Domain Int List Printf Rcu Unix
