examples/quickstart.ml: Atomic Core Domain List Printf String
