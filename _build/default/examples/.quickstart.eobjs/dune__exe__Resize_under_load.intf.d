examples/resize_under_load.mli:
