examples/page_cache.ml: Atomic Core Domain List Printf Unix
