examples/page_cache.mli:
