examples/quickstart.mli:
