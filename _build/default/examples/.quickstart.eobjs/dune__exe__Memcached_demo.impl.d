examples/memcached_demo.ml: Atomic Core Domain Filename List Printf String Unix
