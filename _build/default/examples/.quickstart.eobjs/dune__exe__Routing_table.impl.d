examples/routing_table.ml: Atomic Core Domain List Printf Rcu
