(* memcached demo: start the mini-memcached on a Unix socket, talk to it
   with the bundled client, and show the RP GET fast path serving reads
   while SETs, expiry, and eviction run through the slow path.

   Run with: dune exec examples/memcached_demo.exe *)

let socket_path = Filename.concat (Filename.get_temp_dir_name ()) "rp-mc-demo.sock"

let () =
  let store = Core.Memcached.Store.create ~backend:Core.Memcached.Store.Rp () in
  let server =
    Core.Memcached.Server.start ~store (Core.Memcached.Server.Unix_socket socket_path)
  in
  Printf.printf "server up on %s (backend: rp)\n" socket_path;

  let client =
    Core.Memcached.Client.connect (Core.Memcached.Server.Unix_socket socket_path)
  in
  Printf.printf "server version: %s\n" (Core.Memcached.Client.version client);

  (* Basic storage round trip. *)
  assert (Core.Memcached.Client.set client ~key:"greeting" ~data:"hello" ());
  (match Core.Memcached.Client.get client "greeting" with
  | Some v -> Printf.printf "GET greeting -> %S (flags=%d)\n" v.vdata v.vflags
  | None -> assert false);

  (* add refuses to clobber; cas needs the right unique. *)
  assert (not (Core.Memcached.Client.add client ~key:"greeting" ~data:"other" ()));
  (match Core.Memcached.Client.gets client "greeting" with
  | Some { vcas = Some unique; _ } ->
      (match
         Core.Memcached.Client.cas client ~key:"greeting" ~data:"hello v2" ~unique ()
       with
      | Core.Memcached.Protocol.Stored -> print_endline "CAS with fresh unique: STORED"
      | _ -> assert false);
      (match
         Core.Memcached.Client.cas client ~key:"greeting" ~data:"stale" ~unique ()
       with
      | Core.Memcached.Protocol.Exists -> print_endline "CAS with stale unique: EXISTS"
      | _ -> assert false)
  | Some { vcas = None; _ } | None -> assert false);

  (* Counters. *)
  assert (Core.Memcached.Client.set client ~key:"hits" ~data:"41" ());
  (match Core.Memcached.Client.incr client "hits" 1 with
  | Some 42 -> print_endline "INCR hits -> 42"
  | Some _ | None -> assert false);

  (* Expiry: one-second TTL, checked against the store clock. *)
  assert (Core.Memcached.Client.set client ~key:"ephemeral" ~exptime:1 ~data:"gone soon" ());
  assert (Core.Memcached.Client.get client "ephemeral" <> None);
  Unix.sleepf 1.2;
  assert (Core.Memcached.Client.get client "ephemeral" = None);
  print_endline "1s TTL item expired through the slow path";

  (* Concurrent load: readers over the socket while the main thread SETs. *)
  let stop = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        let c =
          Core.Memcached.Client.connect
            (Core.Memcached.Server.Unix_socket socket_path)
        in
        let n = ref 0 in
        while not (Atomic.get stop) do
          ignore (Core.Memcached.Client.get c "greeting");
          incr n
        done;
        Core.Memcached.Client.close c;
        !n)
  in
  for i = 1 to 500 do
    ignore
      (Core.Memcached.Client.set client
         ~key:(Printf.sprintf "bulk:%04d" i)
         ~data:(String.make 64 'b') ())
  done;
  Atomic.set stop true;
  let reads = Domain.join reader in
  Printf.printf "concurrent reader completed %d GETs during 500 SETs\n" reads;

  print_endline "server stats:";
  List.iter
    (fun (k, v) -> Printf.printf "  %-12s %s\n" k v)
    (Core.Memcached.Client.stats client);

  Core.Memcached.Client.close client;
  Core.Memcached.Server.stop server;
  print_endline "server stopped"
