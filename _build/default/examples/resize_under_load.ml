(* Resize under load: the paper's torture scenario as a demo.

   Reader domains continuously verify the consistency guarantee — "a reader
   traversing a bucket sees every element of that bucket" — while one domain
   flips the table between two sizes and writer domains insert and remove a
   churn keyspace. Any lost element or reachable reclaimed node is reported.

   Run with: dune exec examples/resize_under_load.exe *)

let resident_keys = 2048
let churn_keys = 1024
let run_seconds = 2.0

let () =
  let table =
    Core.Table.create ~initial_size:1024 ~auto_resize:false
      ~hash:Core.Hash.of_int ~equal:Int.equal ()
  in
  (* Resident keys must be visible to every lookup, always. *)
  for i = 0 to resident_keys - 1 do
    Core.Table.insert table i (-i)
  done;

  let stop = Atomic.make false in
  let violations = Atomic.make 0 in

  let reader seed =
    Domain.spawn (fun () ->
        let prng = Core.Workload.Prng.create ~seed in
        let checks = ref 0 in
        while not (Atomic.get stop) do
          let k = Core.Workload.Prng.below prng resident_keys in
          (match Core.Table.find table k with
          | Some v when v = -k -> ()
          | Some _ | None -> Atomic.incr violations);
          incr checks
        done;
        !checks)
  in

  let writer seed =
    Domain.spawn (fun () ->
        let prng = Core.Workload.Prng.create ~seed in
        let ops = ref 0 in
        while not (Atomic.get stop) do
          let k = resident_keys + Core.Workload.Prng.below prng churn_keys in
          if Core.Workload.Prng.bool prng then Core.Table.insert table k k
          else ignore (Core.Table.remove table k);
          incr ops
        done;
        !ops)
  in

  let resizer =
    Domain.spawn (fun () ->
        let flips = ref 0 in
        while not (Atomic.get stop) do
          Core.Table.resize table 4096;
          Core.Table.resize table 512;
          flips := !flips + 2
        done;
        !flips)
  in

  let readers = List.init 2 (fun i -> reader (100 + i)) in
  let writers = List.init 2 (fun i -> writer (200 + i)) in
  Unix.sleepf run_seconds;
  Atomic.set stop true;

  let checks = List.fold_left (fun acc d -> acc + Domain.join d) 0 readers in
  let writes = List.fold_left (fun acc d -> acc + Domain.join d) 0 writers in
  let flips = Domain.join resizer in
  Rcu.barrier (Core.Table.rcu table);

  Printf.printf "reader checks: %d\n" checks;
  Printf.printf "writer ops:    %d\n" writes;
  Printf.printf "resize flips:  %d\n" flips;
  Printf.printf "violations:    %d\n" (Atomic.get violations);
  let stats = Core.Table.resize_stats table in
  Printf.printf "unzip passes:  %d (splices: %d)\n" stats.unzip_passes
    stats.unzip_splices;
  (match Core.Table.validate table with
  | Ok () -> print_endline "final invariant check: OK"
  | Error msg -> Printf.printf "final invariant check FAILED: %s\n" msg);
  if Atomic.get violations > 0 then exit 1
