(* Quickstart: the resizable relativistic hash table in five minutes.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A table needs a hash and an equality for its keys. Sizes are powers of
     two; auto-resize keeps the load factor sane as you insert. *)
  let table =
    Core.Table.create ~initial_size:8 ~hash:Core.Hash.fnv1a_string
      ~equal:String.equal ()
  in

  (* Updates serialize internally; no external locking needed. *)
  Core.Table.insert table "ocaml" 1996;
  Core.Table.insert table "rcu" 2002;
  Core.Table.insert table "rp-hashtable" 2011;

  (* Lookups are wait-free: no locks, no retries, safe from any domain even
     while writers and resizes run. *)
  (match Core.Table.find table "rp-hashtable" with
  | Some year -> Printf.printf "rp-hashtable published in %d\n" year
  | None -> assert false);

  (* Grow the table 64x while readers would remain undisturbed. *)
  Core.Table.resize table 512;
  Printf.printf "resized to %d buckets; still %d entries intact\n"
    (Core.Table.size table) (Core.Table.length table);

  (* Prove it: spawn reader domains that hammer lookups while this domain
     resizes back and forth. *)
  let stop = Atomic.make false in
  let readers =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            let mutable_hits = ref 0 in
            while not (Atomic.get stop) do
              if Core.Table.find table "ocaml" = Some 1996 then incr mutable_hits
            done;
            !mutable_hits))
  in
  for _ = 1 to 20 do
    Core.Table.resize table 16;
    Core.Table.resize table 1024
  done;
  Atomic.set stop true;
  let hits = List.fold_left (fun acc d -> acc + Domain.join d) 0 readers in
  Printf.printf "3 readers completed %d lookups across 40 live resizes\n" hits;

  let stats = Core.Table.resize_stats table in
  Printf.printf "resize machinery: %d expands, %d shrinks, %d unzip passes\n"
    stats.expands stats.shrinks stats.unzip_passes;

  match Core.Table.validate table with
  | Ok () -> print_endline "table invariants hold"
  | Error msg -> Printf.printf "INVARIANT VIOLATION: %s\n" msg
