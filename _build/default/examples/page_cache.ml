(* Page cache over the relativistic radix tree.

   The Linux kernel's page cache maps (file, page-index) to cached pages
   through exactly this structure: a radix tree whose readers (page faults,
   read(2)) must never block on writers (readahead, writeback, truncate).

   We simulate a file of 2^20 pages: reader domains fault pages in a
   Zipf-popular pattern while a writeback domain inserts and a truncate
   domain removes ranges — all while lookups stay wait-free.

   Run with: dune exec examples/page_cache.exe *)

type page = { index : int; generation : int }

let pages = 1 lsl 20
let run_seconds = 1.5

let () =
  let cache : page Core.Radix.t = Core.Radix.create () in
  (* Precharge the hot set. *)
  for i = 0 to 4095 do
    Core.Radix.insert cache i { index = i; generation = 0 }
  done;

  let stop = Atomic.make false in
  let faults = Atomic.make 0 in
  let hits = Atomic.make 0 in
  let corrupt = Atomic.make 0 in

  let reader seed =
    Domain.spawn (fun () ->
        let prng = Core.Workload.Prng.create ~seed in
        let zipf = Core.Workload.Zipf.create ~theta:0.99 ~n:pages () in
        while not (Atomic.get stop) do
          let index = Core.Workload.Zipf.sample zipf prng in
          match Core.Radix.find cache index with
          | Some page ->
              if page.index <> index then Atomic.incr corrupt;
              Atomic.incr hits
          | None -> Atomic.incr faults
        done)
  in

  let writeback =
    Domain.spawn (fun () ->
        let prng = Core.Workload.Prng.create ~seed:99 in
        let generation = ref 1 in
        let inserted = ref 0 in
        while not (Atomic.get stop) do
          (* Readahead: populate a small contiguous window. *)
          let base = Core.Workload.Prng.below prng pages in
          for i = base to min (pages - 1) (base + 31) do
            Core.Radix.insert cache i { index = i; generation = !generation }
          done;
          incr generation;
          inserted := !inserted + 32
        done;
        !inserted)
  in

  let truncate =
    Domain.spawn (fun () ->
        let prng = Core.Workload.Prng.create ~seed:55 in
        let removed = ref 0 in
        while not (Atomic.get stop) do
          (* Truncate a random 64-page range (the hot set is spared so the
             reader's hit/corruption accounting stays meaningful). *)
          let base = 4096 + Core.Workload.Prng.below prng (pages - 4096 - 64) in
          for i = base to base + 63 do
            if Core.Radix.remove cache i then incr removed
          done
        done;
        !removed)
  in

  let readers = List.init 2 (fun i -> reader (i + 1)) in
  Unix.sleepf run_seconds;
  Atomic.set stop true;
  List.iter Domain.join readers;
  let inserted = Domain.join writeback in
  let removed = Domain.join truncate in

  Printf.printf "lookups: %d hits, %d faults (hit rate %.1f%%)\n"
    (Atomic.get hits) (Atomic.get faults)
    (100.0
    *. float_of_int (Atomic.get hits)
    /. float_of_int (max 1 (Atomic.get hits + Atomic.get faults)));
  Printf.printf "writeback inserted %d pages; truncate removed %d\n" inserted
    removed;
  Printf.printf "cached pages: %d (tree height %d, capacity %d)\n"
    (Core.Radix.length cache) (Core.Radix.height cache)
    (Core.Radix.capacity cache);
  Printf.printf "corrupt lookups: %d\n" (Atomic.get corrupt);
  (match Core.Radix.validate cache with
  | Ok () -> print_endline "radix tree invariants hold"
  | Error msg ->
      Printf.printf "INVARIANT VIOLATION: %s\n" msg;
      exit 1);
  if Atomic.get corrupt > 0 then exit 1
