(* Connection tracking: the kernel workload this algorithm was built for.

   (The Linux kernel adopted this paper's algorithm as `rhashtable`, whose
   first users included netfilter connection tracking and socket tables.)

   We simulate a firewall's flow table: packet-processing domains look up a
   5-tuple for every packet (read-mostly, latency-critical), a control
   domain establishes and tears down flows, and the table auto-resizes as
   flow counts swing from hundreds to hundreds of thousands and back —
   exactly the fixed-size-table dilemma the paper's introduction motivates.

   Run with: dune exec examples/routing_table.exe *)

type flow = {
  src_ip : int;
  dst_ip : int;
  src_port : int;
  dst_port : int;
  proto : int;
}

type verdict = Accept | Drop

let flow_hash f =
  Core.Hash.combine
    (Core.Hash.combine (Core.Hash.of_int f.src_ip) (Core.Hash.of_int f.dst_ip))
    (Core.Hash.of_int ((f.src_port lsl 20) lxor (f.dst_port lsl 4) lxor f.proto))

let flow_equal a b =
  a.src_ip = b.src_ip && a.dst_ip = b.dst_ip && a.src_port = b.src_port
  && a.dst_port = b.dst_port && a.proto = b.proto

let random_flow prng i =
  {
    src_ip = 0x0a000000 lor (i land 0xffff);
    dst_ip = 0xc0a80000 lor Core.Workload.Prng.below prng 256;
    src_port = 1024 + (i mod 60000);
    dst_port = (if i land 1 = 0 then 443 else 80);
    proto = 6;
  }

let () =
  let table =
    Core.Table.create ~initial_size:256 ~min_size:256 ~auto_resize:true
      ~hash:flow_hash ~equal:flow_equal ()
  in
  let stop = Atomic.make false in
  let packets = Atomic.make 0 in
  let accepted = Atomic.make 0 in

  (* Packet path: wait-free lookups; unknown flows are dropped. *)
  let forwarder seed =
    Domain.spawn (fun () ->
        let prng = Core.Workload.Prng.create ~seed in
        while not (Atomic.get stop) do
          let flow = random_flow prng (Core.Workload.Prng.below prng 100_000) in
          (match Core.Table.find table flow with
          | Some Accept -> Atomic.incr accepted
          | Some Drop | None -> ());
          Atomic.incr packets
        done)
  in

  (* Control path: connection setup/teardown in waves, so the flow count
     swings and auto-resize exercises both directions. *)
  let controller =
    Domain.spawn (fun () ->
        let prng = Core.Workload.Prng.create ~seed:7 in
        let sizes = ref [] in
        for wave = 1 to 4 do
          let flows = List.init 50_000 (fun i -> random_flow prng i) in
          (* Policy: port-80 flows are tracked but dropped. *)
          List.iter
            (fun f ->
              Core.Table.insert table f (if f.dst_port = 80 then Drop else Accept))
            flows;
          sizes := (wave, Core.Table.length table, Core.Table.size table) :: !sizes;
          List.iteri
            (fun i f -> if i mod 10 <> 0 then ignore (Core.Table.remove table f))
            flows;
          sizes := (-wave, Core.Table.length table, Core.Table.size table) :: !sizes
        done;
        List.rev !sizes)
  in

  let forwarders = List.init 2 (fun i -> forwarder (40 + i)) in
  let waves = Domain.join controller in
  Atomic.set stop true;
  List.iter Domain.join forwarders;

  print_endline "wave  phase      flows   buckets";
  List.iter
    (fun (wave, flows, buckets) ->
      Printf.printf "%4d  %-9s %7d  %8d\n" (abs wave)
        (if wave > 0 then "setup" else "teardown")
        flows buckets)
    waves;
  Printf.printf "packets processed: %d (accepted %d)\n" (Atomic.get packets)
    (Atomic.get accepted);
  let stats = Core.Table.resize_stats table in
  Printf.printf "auto-resize: %d expands, %d shrinks, %d unzip passes\n"
    stats.expands stats.shrinks stats.unzip_passes;
  Rcu.barrier (Core.Table.rcu table);
  match Core.Table.validate table with
  | Ok () -> print_endline "flow table invariants hold"
  | Error msg ->
      Printf.printf "INVARIANT VIOLATION: %s\n" msg;
      exit 1
