(* The cluster plane: ketama ring math, the replication wire codec, and
   a full in-process leader -> follower -> promote cycle over real
   sockets and a real op log. *)

open Memcached
module Ring = Rp_cluster.Ring
module Wire = Rp_cluster.Repl_wire

(* --- scratch directories --- *)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let fresh_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "rp-cluster-test-%d-%d" (Unix.getpid ()) !ctr)
    in
    rm_rf dir;
    Unix.mkdir dir 0o755;
    dir

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let eventually ?(timeout = 10.) ?(label = "condition") f =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec wait () =
    if f () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" label
    else begin
      Thread.delay 0.005;
      wait ()
    end
  in
  wait ()

(* --- ring --- *)

let mk host port weight = { Ring.host; port; weight }

let test_ring_basic () =
  let ring = Ring.create [ mk "a" 1 1; mk "b" 2 1; mk "c" 3 1 ] in
  Alcotest.(check int) "members" 3 (Ring.size ring);
  (* ~100 points per weight, 4 per digest, for each of 3 members *)
  Alcotest.(check bool) "points" true (Ring.points ring >= 300);
  (* Deterministic: same key, same owner. *)
  for i = 0 to 99 do
    let key = Printf.sprintf "key-%d" i in
    let a = Ring.lookup ring key and b = Ring.lookup ring key in
    Alcotest.(check (option int)) "stable" a b
  done;
  (* Every member owns something under a uniform keyload. *)
  let counts = Array.make 3 0 in
  for i = 0 to 9_999 do
    match Ring.lookup ring (Printf.sprintf "key-%d" i) with
    | Some o -> counts.(o) <- counts.(o) + 1
    | None -> Alcotest.fail "lookup on non-empty ring"
  done;
  Array.iteri
    (fun i c ->
      if c = 0 then Alcotest.failf "member %d owns no keys" i;
      (* Ketama with 100 points/member is lumpy but not absurd. *)
      if c > 7_000 then Alcotest.failf "member %d owns %d of 10000 keys" i c)
    counts

(* The consistent-hashing promise, and the PR's acceptance bar: growing
   N members to N+1 remaps at most about K/N keys — we assert the 2x
   slack bound, against the >= K/2 a mod-N scheme would shuffle. *)
let test_ring_minimal_remap () =
  let n = 8 and k = 10_000 in
  let members = List.init n (fun i -> mk (Printf.sprintf "node%d" i) (11210 + i) 1) in
  let ring_n = Ring.create members in
  let ring_n1 = Ring.create (members @ [ mk "node8" 11218 1 ]) in
  let moved = ref 0 in
  for i = 0 to k - 1 do
    let key = Printf.sprintf "user:%d:session" i in
    match (Ring.lookup ring_n key, Ring.lookup ring_n1 key) with
    | Some a, Some b ->
        (* Members are listed in the same order, so indices align. *)
        if a <> b then begin
          incr moved;
          (* Keys only ever move TO the new member, never between old
             members — the ketama guarantee. *)
          Alcotest.(check int) "moved keys land on the new member" n b
        end
    | _ -> Alcotest.fail "lookup failed"
  done;
  let bound = 2 * k / n in
  if !moved > bound then
    Alcotest.failf "membership change remapped %d keys, bound %d (K=%d N=%d)"
      !moved bound k n;
  if !moved = 0 then Alcotest.fail "new member owns nothing"

let test_ring_weights () =
  let ring = Ring.create [ mk "small" 1 1; mk "big" 2 4 ] in
  let counts = Array.make 2 0 in
  for i = 0 to 9_999 do
    match Ring.lookup ring (Printf.sprintf "k%d" i) with
    | Some o -> counts.(o) <- counts.(o) + 1
    | None -> Alcotest.fail "lookup"
  done;
  (* 4x the weight should land well over 2x the keys. *)
  if counts.(1) < 2 * counts.(0) then
    Alcotest.failf "weight 4 member owns %d vs weight 1's %d" counts.(1)
      counts.(0)

let test_ring_avoid_slides () =
  let ring = Ring.create [ mk "a" 1 1; mk "b" 2 1; mk "c" 3 1 ] in
  let owned_by_dead = ref 0 in
  for i = 0 to 999 do
    let key = Printf.sprintf "key-%d" i in
    let owner = Option.get (Ring.lookup ring key) in
    let failover = Option.get (Ring.lookup ring ~avoid:(fun m -> m = 1) key) in
    if owner = 1 then begin
      incr owned_by_dead;
      Alcotest.(check bool) "slid off the dead member" true (failover <> 1)
    end
    else
      (* Ejection must not disturb keys the dead member never owned. *)
      Alcotest.(check int) "unaffected key kept its owner" owner failover
  done;
  Alcotest.(check bool) "test exercised the dead member" true (!owned_by_dead > 0);
  (* All avoided -> None. *)
  Alcotest.(check (option int)) "all avoided" None
    (Ring.lookup ring ~avoid:(fun _ -> true) "anything")

(* --- wire codec --- *)

let roundtrip msgs =
  let rd, wr = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close rd with Unix.Unix_error _ -> ());
      try Unix.close wr with Unix.Unix_error _ -> ())
    (fun () ->
      List.iter (Wire.write_msg wr) msgs;
      Unix.close wr;
      let rec drain acc =
        match Wire.read_msg rd with
        | Some m -> drain (m :: acc)
        | None -> List.rev acc
      in
      drain [])

let test_wire_roundtrip () =
  let msgs =
    [
      Wire.Hello { from_gen = 42 };
      Wire.Rec
        {
          gen = 7;
          seq = 123456789;
          trace = 0x1234_5678_9abc;
          ts_us = 1_722_000_000_000_000;
          payload = "opaque \x00\xff record bytes";
        };
      Wire.Rec { gen = 0; seq = 0; trace = 0; ts_us = 0; payload = "" };
      Wire.Ack { gen = 7; seq = 123456789 };
      Wire.Ping;
    ]
  in
  let got = roundtrip msgs in
  Alcotest.(check int) "count" (List.length msgs) (List.length got);
  List.iter2
    (fun a b -> Alcotest.(check bool) "msg" true (a = b))
    msgs got

let test_wire_corrupt () =
  let rd, wr = Unix.pipe () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close rd with Unix.Unix_error _ -> ());
      try Unix.close wr with Unix.Unix_error _ -> ())
    (fun () ->
      (* A frame with a bad CRC must raise Corrupt, not decode. *)
      let body = "Hgarbage" in
      let b = Bytes.create (8 + String.length body) in
      Bytes.set_int32_be b 0 (Int32.of_int (String.length body));
      Bytes.set_int32_be b 4 0xDEADl (* wrong CRC *);
      Bytes.blit_string body 0 b 8 (String.length body);
      ignore (Unix.write wr b 0 (Bytes.length b));
      Unix.close wr;
      match Wire.read_msg rd with
      | exception Wire.Corrupt _ -> ()
      | Some _ -> Alcotest.fail "decoded a corrupt frame"
      | None -> Alcotest.fail "EOF instead of Corrupt")

(* --- in-process leader/follower e2e --- *)

let store_kv store key =
  Option.map (fun (v : Protocol.value) -> v.Protocol.vdata) (Store.get store key)

let test_replication_e2e () =
  with_dir @@ fun leader_dir ->
  with_dir @@ fun follower_dir ->
  Rp_trace.reset ();
  Rp_trace.configure ~sample:1 ();
  let k_req = Rp_trace.intern "test.leader_request" in
  let leader_store = Store.create () in
  let leader_persist = Persist.attach ~dir:leader_dir leader_store in
  let leader =
    Cluster.lead ~store:leader_store ~persist:leader_persist
      (Unix.ADDR_INET (Unix.inet_addr_loopback, 0))
  in
  let port = Cluster.repl_port leader in
  Alcotest.(check bool) "picked a port" true (port > 0);
  (* Writes before the follower exists: catch-up must deliver them. *)
  for i = 0 to 99 do
    ignore
      (Store.set leader_store
         ~key:(Printf.sprintf "early-%d" i)
         ~flags:i ~exptime:0
         ~data:(Printf.sprintf "value-%d" i))
  done;
  let follower_store = Store.create () in
  let follower_persist = Persist.attach ~dir:follower_dir follower_store in
  let follower =
    Cluster.follow ~store:follower_store
      ~leader:(Unix.ADDR_INET (Unix.inet_addr_loopback, port))
      ()
  in
  Alcotest.(check bool) "follower is read-only" true
    (Store.read_only follower_store);
  eventually ~label:"catch-up" (fun () -> Cluster.applied follower >= 100);
  (* Live writes after attach, one of them inside a traced request so
     the trace id rides the stream. *)
  Rp_trace.request_begin k_req;
  let leader_trace = Rp_trace.current_trace_id () in
  ignore
    (Store.set leader_store ~key:"traced" ~flags:0 ~exptime:0 ~data:"traced-v");
  Rp_trace.request_end ();
  Alcotest.(check bool) "leader request had a trace id" true (leader_trace <> 0);
  for i = 0 to 49 do
    ignore
      (Store.set leader_store
         ~key:(Printf.sprintf "live-%d" i)
         ~flags:0 ~exptime:0 ~data:(Printf.sprintf "lv-%d" i))
  done;
  ignore (Store.delete leader_store "early-0");
  eventually ~label:"live stream" (fun () -> Cluster.applied follower >= 152);
  (* The follower state matches the leader exactly. *)
  Alcotest.(check (option string)) "early key" (Some "value-7")
    (store_kv follower_store "early-7");
  Alcotest.(check (option string)) "traced key" (Some "traced-v")
    (store_kv follower_store "traced");
  Alcotest.(check (option string)) "live key" (Some "lv-49")
    (store_kv follower_store "live-49");
  Alcotest.(check (option string)) "delete propagated" None
    (store_kv follower_store "early-0");
  (* Cross-process trace propagation (in-process here, but through the
     full socket + wire path): the apply span carries the leader's id. *)
  let events, _skipped = Rp_trace.snapshot () in
  let apply_traced =
    List.exists
      (fun (e : Rp_trace.event) ->
        e.Rp_trace.name = "repl.apply" && e.Rp_trace.trace = leader_trace)
      events
  in
  Alcotest.(check bool) "apply span joined the leader trace" true apply_traced;
  (* Read-only refusal on the follower... *)
  Alcotest.(check bool) "follower refuses client writes" true
    (match
       Dispatch.handle follower_store
         (Protocol.Set
            { key = "x"; flags = 0; exptime = 0; noreply = false; data = "y" })
     with
    | Some (Protocol.Server_error _) -> true
    | _ -> false);
  (* ...lifted by promotion, via the admin-command path. *)
  (match Dispatch.handle follower_store Protocol.Cluster_promote with
  | Some Protocol.Ok_reply -> ()
  | _ -> Alcotest.fail "cluster promote failed");
  Alcotest.(check bool) "promoted store accepts writes" true
    (Store.set follower_store ~key:"post-promote" ~flags:0 ~exptime:0
       ~data:"mine"
    = Store.Stored);
  Alcotest.(check string) "role" "promoted"
    (List.assoc "cluster_role" (Store.cluster_stats follower_store));
  (* The follower re-logged the stream: its own oplog alone rebuilds the
     replicated state (what makes a promoted replica durable). *)
  Persist.stop follower_persist;
  let reborn = Store.create () in
  let reborn_persist = Persist.attach ~dir:follower_dir reborn in
  Alcotest.(check (option string)) "follower oplog replays the stream"
    (Some "value-7") (store_kv reborn "early-7");
  Alcotest.(check (option string)) "and the promoted write"
    (Some "mine") (store_kv reborn "post-promote");
  Persist.stop reborn_persist;
  Cluster.stop follower;
  Cluster.stop leader;
  Persist.stop leader_persist;
  Rp_trace.reset ();
  (* Leftover persistence files: clean so with_dir can rmdir. *)
  List.iter
    (fun d ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
        (Sys.readdir d))
    [ leader_dir; follower_dir ]

(* A follower that connects, dies, and reconnects resumes from its
   watermark — and duplicate delivery across the resume is harmless. *)
let test_follower_reconnect () =
  with_dir @@ fun leader_dir ->
  let leader_store = Store.create () in
  let leader_persist = Persist.attach ~dir:leader_dir leader_store in
  let leader =
    Cluster.lead ~store:leader_store ~persist:leader_persist
      (Unix.ADDR_INET (Unix.inet_addr_loopback, 0))
  in
  let port = Cluster.repl_port leader in
  for i = 0 to 49 do
    ignore
      (Store.set leader_store
         ~key:(Printf.sprintf "k-%d" i)
         ~flags:0 ~exptime:0 ~data:(Printf.sprintf "v-%d" i))
  done;
  let follower_store = Store.create () in
  let f1 =
    Cluster.follow ~store:follower_store
      ~leader:(Unix.ADDR_INET (Unix.inet_addr_loopback, port))
      ()
  in
  eventually ~label:"first sync" (fun () -> Cluster.applied f1 >= 50);
  Cluster.stop f1;
  (* More writes while detached. *)
  for i = 50 to 79 do
    ignore
      (Store.set leader_store
         ~key:(Printf.sprintf "k-%d" i)
         ~flags:0 ~exptime:0 ~data:(Printf.sprintf "v-%d" i))
  done;
  (* New session: no persist on the follower, so from_gen restarts the
     stream from the top — duplicates the first 50, which must converge
     to identical state (idempotent records). *)
  let f2 =
    Cluster.follow ~store:follower_store
      ~leader:(Unix.ADDR_INET (Unix.inet_addr_loopback, port))
      ()
  in
  eventually ~label:"resync" (fun () ->
      store_kv follower_store "k-79" = Some "v-79");
  for i = 0 to 79 do
    Alcotest.(check (option string))
      (Printf.sprintf "k-%d" i)
      (Some (Printf.sprintf "v-%d" i))
      (store_kv follower_store (Printf.sprintf "k-%d" i))
  done;
  Cluster.stop f2;
  Cluster.stop leader;
  Persist.stop leader_persist;
  Array.iter
    (fun f -> try Sys.remove (Filename.concat leader_dir f) with Sys_error _ -> ())
    (Sys.readdir leader_dir)

(* --- client-side ejection / failover (no live servers needed) --- *)

(* Three members, none actually listening: every request fails, the
   routed member gets ejected, retries re-route, and after the retry
   budget the error escapes — live_members must drop to zero. *)
let test_client_ejection () =
  let client =
    Client.of_servers ~retries:2 ~eject_after:1 ~rejoin_after:60.
      [ ("127.0.0.1", 9, 1); ("127.0.0.1", 11, 1); ("127.0.0.1", 13, 1) ]
  in
  Alcotest.(check int) "all live initially" 3 (Client.live_members client);
  (match Client.get client "some-key" with
  | exception _ -> ()
  | _ -> Alcotest.fail "connect to port 9 should fail");
  (* eject_after=1 and retries=2: the first attempt ejects the owner,
     both retries eject their re-routed members. *)
  Alcotest.(check int) "ejected after failures" 0 (Client.live_members client);
  Client.close client

let () =
  Alcotest.run "cluster"
    [
      ( "ring",
        [
          Alcotest.test_case "basic" `Quick test_ring_basic;
          Alcotest.test_case "minimal remap" `Quick test_ring_minimal_remap;
          Alcotest.test_case "weights" `Quick test_ring_weights;
          Alcotest.test_case "avoid slides" `Quick test_ring_avoid_slides;
        ] );
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "corrupt" `Quick test_wire_corrupt;
        ] );
      ( "replication",
        [
          Alcotest.test_case "leader-follower-promote" `Quick
            test_replication_e2e;
          Alcotest.test_case "reconnect resumes" `Quick test_follower_reconnect;
        ] );
      ( "client",
        [ Alcotest.test_case "ejection" `Quick test_client_ejection ] );
    ]
