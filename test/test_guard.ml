(* The overload-resilience plane: the Rp_guard ladder itself (hysteresis,
   latches, instruments), the dispatch-level mutation shedding on both
   protocols, the persistence actuators (pause + fsync relax), adaptive
   trace sampling, op-log size rotation with bounded archives, the
   post-recovery eviction sweep, and connection admission control. *)

open Memcached

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let fresh_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "rp-guard-test-%d-%d" (Unix.getpid ()) !ctr)
    in
    rm_rf dir;
    Unix.mkdir dir 0o755;
    dir

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let state = Alcotest.testable (Fmt.of_to_string Rp_guard.state_name) ( = )

(* A guard driven entirely by hand: one mutable pressure source, manual
   sweeps, no background thread. *)
let manual_guard () =
  let g = Rp_guard.create ~interval:10.0 () in
  let p = ref 0.0 in
  Rp_guard.add_source g ~name:"manual" (fun () -> !p);
  (g, p)

(* --- watermarks --- *)

let test_watermarks_parse () =
  (match Rp_guard.watermarks_of_string "0.85:0.70" with
  | Ok w ->
      Alcotest.(check (float 1e-9)) "shed up" 0.85 w.Rp_guard.shed_up;
      Alcotest.(check (float 1e-9)) "shed down" 0.70 w.Rp_guard.shed_down;
      Alcotest.(check (float 1e-9)) "throttle up" 0.70 w.Rp_guard.throttle_up;
      Alcotest.(check (float 1e-9)) "emergency up" 0.95 w.Rp_guard.emergency_up
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (* Emergency clamps at 0.99 when the shed rung sits high. *)
  (match Rp_guard.watermarks_of_string "0.95:0.90" with
  | Ok w ->
      Alcotest.(check (float 1e-9)) "clamped" 0.99 w.Rp_guard.emergency_up
  | Error e -> Alcotest.failf "parse failed: %s" e);
  let bad s =
    match Rp_guard.watermarks_of_string s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  bad "0.7:0.8" (* LOW >= HIGH *);
  bad "1.5:0.5" (* HIGH > 1 *);
  bad "0.8:0" (* LOW = 0 *);
  bad "0.8" (* missing LOW *);
  bad "a:b"

(* --- the ladder --- *)

let test_ladder_up_jumps () =
  let g, p = manual_guard () in
  Alcotest.check state "starts healthy" Rp_guard.Healthy (Rp_guard.state g);
  p := 0.72;
  Rp_guard.sweep g;
  Alcotest.check state "throttle" Rp_guard.Throttle (Rp_guard.state g);
  p := 0.90;
  Rp_guard.sweep g;
  Alcotest.check state "shed" Rp_guard.Shed (Rp_guard.state g);
  p := 0.96;
  Rp_guard.sweep g;
  Alcotest.check state "emergency" Rp_guard.Emergency (Rp_guard.state g);
  Alcotest.(check int) "three transitions" 3 (Rp_guard.transitions g);
  (* Upward moves skip rungs: a fresh guard at full pressure jumps
     straight to Emergency. *)
  let g2, p2 = manual_guard () in
  p2 := 0.96;
  Rp_guard.sweep g2;
  Alcotest.check state "direct jump" Rp_guard.Emergency (Rp_guard.state g2)

let test_ladder_hysteresis () =
  let g, p = manual_guard () in
  p := 0.72;
  Rp_guard.sweep g;
  Alcotest.check state "throttle" Rp_guard.Throttle (Rp_guard.state g);
  (* Inside the band (down 0.55 <= p < up 0.70): hold the rung. *)
  p := 0.60;
  Rp_guard.sweep g;
  Alcotest.check state "held" Rp_guard.Throttle (Rp_guard.state g);
  p := 0.50;
  Rp_guard.sweep g;
  Alcotest.check state "released" Rp_guard.Healthy (Rp_guard.state g);
  (* From Shed, a partial drop resolves to the rung the pressure still
     demands, not all the way down. *)
  p := 0.90;
  Rp_guard.sweep g;
  Alcotest.check state "shed again" Rp_guard.Shed (Rp_guard.state g);
  p := 0.65;
  Rp_guard.sweep g;
  Alcotest.check state "partial drop" Rp_guard.Throttle (Rp_guard.state g);
  (* A vanished overload resolves to Healthy in a single sweep. *)
  p := 0.96;
  Rp_guard.sweep g;
  p := 0.0;
  Rp_guard.sweep g;
  Alcotest.check state "single-sweep recovery" Rp_guard.Healthy
    (Rp_guard.state g);
  Alcotest.check state "peak sticks" Rp_guard.Emergency
    (Rp_guard.peak_state g)

let test_ladder_latch_and_gates () =
  let g, p = manual_guard () in
  Alcotest.(check bool) "admits" true (Rp_guard.admit_mutation g);
  Alcotest.(check bool) "accepts" true (Rp_guard.accepting g);
  p := 0.72;
  Rp_guard.sweep g;
  Alcotest.(check bool) "throttle admits" true (Rp_guard.admit_mutation g);
  p := 0.90;
  Rp_guard.sweep g;
  Alcotest.(check bool) "shed refuses mutations" false
    (Rp_guard.admit_mutation g);
  Alcotest.(check bool) "shed still accepts conns" true (Rp_guard.accepting g);
  (* The hard-failure latch (2.0) forces Emergency from anywhere. *)
  p := 2.0;
  Rp_guard.sweep g;
  Alcotest.check state "latched" Rp_guard.Emergency (Rp_guard.state g);
  Alcotest.(check bool) "emergency stops accepting" false
    (Rp_guard.accepting g)

let test_source_failure_keeps_last () =
  let g = Rp_guard.create ~interval:10.0 () in
  let ok = ref true in
  Rp_guard.add_source g ~name:"flaky" (fun () ->
      if !ok then 0.9 else failwith "sampler died");
  Rp_guard.sweep g;
  Alcotest.check state "shed" Rp_guard.Shed (Rp_guard.state g);
  ok := false;
  Rp_guard.sweep g;
  (* The dead sampler's last reading holds; the guard does not treat a
     broken sensor as a recovery. *)
  Alcotest.check state "still shed" Rp_guard.Shed (Rp_guard.state g);
  Alcotest.(check (float 1e-9)) "pressure held" 0.9 (Rp_guard.pressure g)

let test_listeners_and_instruments () =
  let g, p = manual_guard () in
  let seen = ref [] in
  Rp_guard.on_transition g (fun o n -> seen := (o, n) :: !seen);
  (* A failing actuator must not take down the sweep or later listeners. *)
  Rp_guard.on_transition g (fun _ _ -> failwith "actuator died");
  let reg = Rp_obs.Registry.create () in
  Rp_guard.register_instruments g reg;
  p := 0.90;
  Rp_guard.sweep g;
  p := 0.0;
  Rp_guard.sweep g;
  Alcotest.(check (list (pair state state)))
    "transitions observed"
    [ (Rp_guard.Healthy, Rp_guard.Shed); (Rp_guard.Shed, Rp_guard.Healthy) ]
    (List.rev !seen);
  Rp_guard.note_shed g;
  Rp_guard.note_shed g;
  Alcotest.(check int) "shed counter" 2 (Rp_guard.shed_total g);
  let metric name =
    match Rp_obs.Registry.value reg name with
    | Some v -> v
    | None -> Alcotest.failf "missing instrument %s" name
  in
  Alcotest.(check (float 1e-9)) "guard_state gauge" 0.0 (metric "guard_state");
  Alcotest.(check (float 1e-9)) "peak gauge" 2.0 (metric "guard_state_peak");
  Alcotest.(check (float 1e-9)) "shed total" 2.0 (metric "guard_shed_total");
  Alcotest.(check (float 1e-9)) "transitions" 2.0
    (metric "guard_transitions_total");
  Alcotest.(check bool) "per-source gauge" true
    (Rp_obs.Registry.value reg "guard_pressure_manual" <> None);
  let kv = Rp_guard.stats_kv g in
  Alcotest.(check (option string)) "state name" (Some "healthy")
    (List.assoc_opt "guard_state_name" kv);
  Alcotest.(check (option string)) "peak name" (Some "shed")
    (List.assoc_opt "guard_state_peak" kv)

(* --- dispatch shedding, both protocols --- *)

(* A store whose guard is pinned at Shed by a constant source. *)
let shedding_store () =
  let store = Store.create ~backend:Store.Rp () in
  ignore (Store.set store ~key:"k" ~flags:0 ~exptime:0 ~data:"v");
  let g = Rp_guard.create ~interval:10.0 () in
  Rp_guard.add_source g ~name:"test" (fun () -> 0.9);
  Rp_guard.sweep g;
  Store.set_guard store (Some g);
  (store, g)

let storage key data : Protocol.storage =
  { key; flags = 0; exptime = 0; noreply = false; data }

let test_text_shed () =
  let store, g = shedding_store () in
  (match Server.handle store (Protocol.Set (storage "x" "y")) with
  | Some (Protocol.Server_error "overloaded") -> ()
  | _ -> Alcotest.fail "mutation not shed");
  (match Server.handle store (Protocol.Delete { key = "k"; noreply = false }) with
  | Some (Protocol.Server_error "overloaded") -> ()
  | _ -> Alcotest.fail "delete not shed");
  (* noreply mutations shed silently: no response, still counted. *)
  (match
     Server.handle store
       (Protocol.Set { (storage "x" "y") with noreply = true })
   with
  | None -> ()
  | Some _ -> Alcotest.fail "noreply shed must stay silent");
  Alcotest.(check int) "sheds counted" 3 (Rp_guard.shed_total g);
  (* Reads are never shed, and the shed mutation really did not land. *)
  (match Server.handle store (Protocol.Get [ "k" ]) with
  | Some (Protocol.Values [ v ]) ->
      Alcotest.(check string) "read intact" "v" v.Protocol.vdata
  | _ -> Alcotest.fail "GET must keep working under shed");
  (match Server.handle store (Protocol.Get [ "x" ]) with
  | Some (Protocol.Values []) -> ()
  | _ -> Alcotest.fail "shed set must not have landed");
  (* stats guard is reachable while shedding. *)
  match Server.handle store (Protocol.Stats (Some "guard")) with
  | Some (Protocol.Stats_reply kv) ->
      Alcotest.(check (option string)) "live state" (Some "shed")
        (List.assoc_opt "guard_state_name" kv);
      Alcotest.(check (option string)) "enabled" (Some "1")
        (List.assoc_opt "guard_enabled" kv)
  | _ -> Alcotest.fail "stats guard failed"

let test_binary_shed () =
  Alcotest.(check int) "busy wire code" 0x0085
    (Binary_protocol.status_to_int Binary_protocol.Busy);
  Alcotest.(check bool) "busy roundtrip" true
    (Binary_protocol.status_of_int 0x0085 = Binary_protocol.Busy);
  let store, g = shedding_store () in
  let req opcode key value extras =
    { Binary_protocol.opcode; key; value; extras; opaque = 7; cas = 0 }
  in
  (match
     Binary_server.handle store
       (req Binary_protocol.Set "x" "y"
          (Binary_protocol.set_extras ~flags:0 ~exptime:0))
   with
  | [ r ] ->
      Alcotest.(check bool) "busy status" true
        (r.Binary_protocol.status = Binary_protocol.Busy);
      Alcotest.(check int) "opaque echoed" 7 r.Binary_protocol.r_opaque
  | _ -> Alcotest.fail "binary set must shed with one Busy response");
  Alcotest.(check int) "shed counted" 1 (Rp_guard.shed_total g);
  match Binary_server.handle store (req Binary_protocol.Get "k" "" "") with
  | [ r ] ->
      Alcotest.(check bool) "get ok" true
        (r.Binary_protocol.status = Binary_protocol.Ok_status);
      Alcotest.(check string) "value" "v" r.Binary_protocol.r_value
  | _ -> Alcotest.fail "binary GET must keep working under shed"

let test_guard_stats_disabled () =
  let store = Store.create ~backend:Store.Rp () in
  Alcotest.(check (option string)) "disabled" (Some "0")
    (List.assoc_opt "guard_enabled" (Store.guard_stats store))

(* --- post-recovery eviction sweep --- *)

let test_post_recovery_sweep () =
  with_dir (fun dir ->
      let big = Store.create ~backend:Store.Rp ~max_bytes:(8 * 1024 * 1024) () in
      let p1 = Persist.attach ~aof:true ~dir big in
      let data = String.make 1024 'd' in
      for k = 0 to 63 do
        ignore
          (Store.set big ~key:("rk" ^ string_of_int k) ~flags:0 ~exptime:0
             ~data)
      done;
      Persist.stop p1;
      (* Warm restart into a store whose budget cannot hold what the
         directory contains: recovery must replay everything, then sweep
         back under budget before serving. *)
      let budget = 16 * 1024 in
      let small = Store.create ~backend:Store.Rp ~max_bytes:budget () in
      let p2 = Persist.attach ~aof:true ~dir small in
      let r = Persist.recovery p2 in
      Alcotest.(check bool) "replayed records" true (r.Persist.log_records >= 64);
      Alcotest.(check bool) "sweep evicted" true
        (r.Persist.post_recovery_evictions > 0);
      Alcotest.(check bool)
        (Printf.sprintf "under budget (%d <= %d)" (Store.bytes small) budget)
        true
        (Store.bytes small <= budget);
      Alcotest.(check bool) "something survived" true (Store.items small > 0);
      Persist.stop p2)

(* --- op-log size rotation and bounded archives --- *)

let test_oplog_size_rotation () =
  with_dir (fun dir ->
      let l =
        Rp_persist.Oplog.open_ ~max_bytes:512 ~dir ~gen:1
          ~fsync:Rp_persist.Oplog.Never ()
      in
      Alcotest.(check int) "starts at gen 1" 1 (Rp_persist.Oplog.gen l);
      for i = 0 to 31 do
        Rp_persist.Oplog.append l
          (Rp_persist.Record.Set
             {
               op = Rp_persist.Record.Tset;
               key = "k" ^ string_of_int i;
               flags = 0;
               exptime = 0.0;
               cas = i;
               data = String.make 64 'x';
             })
      done;
      Alcotest.(check bool) "rotated by size" true (Rp_persist.Oplog.gen l > 1);
      let segs = Rp_persist.Oplog.segments ~dir in
      Alcotest.(check bool) "multiple segments" true (List.length segs > 1);
      (* Every segment stays replayable: rotation must close each one on
         a frame boundary. *)
      Rp_persist.Oplog.close l;
      let replayed = ref 0 in
      let r =
        Rp_persist.Oplog.replay ~dir ~from_gen:1 ~f:(fun _ -> incr replayed)
      in
      Alcotest.(check int) "no bad records" 0 r.Rp_persist.Oplog.bad_records;
      Alcotest.(check int) "all records survive rotation" 32 !replayed)

let archive_files dir =
  List.filter
    (fun f ->
      match String.rindex_opt f '-' with
      | Some i -> i >= 4 && String.sub f (i - 4) 4 = ".old"
      | None -> false)
    (Array.to_list (Sys.readdir dir))

let test_compaction_archives_bounded () =
  with_dir (fun dir ->
      let store = Store.create ~backend:Store.Rp () in
      let p = Persist.attach ~aof:true ~archive_keep:1 ~dir store in
      for round = 1 to 4 do
        ignore
          (Store.set store
             ~key:("c" ^ string_of_int round)
             ~flags:0 ~exptime:0 ~data:"v");
        match Persist.snapshot_now p with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "snapshot %d failed: %s" round e
      done;
      let archives = archive_files dir in
      Alcotest.(check bool) "compaction archived something" true
        (archives <> []);
      let gens =
        List.sort_uniq compare
          (List.filter_map
             (fun f ->
               match String.rindex_opt f '-' with
               | Some i ->
                   int_of_string_opt
                     (String.sub f (i + 1) (String.length f - i - 1))
               | None -> None)
             archives)
      in
      Alcotest.(check bool)
        (Printf.sprintf "archived generations bounded (%d)" (List.length gens))
        true
        (List.length gens <= 1);
      (* Archives are invisible to recovery: a warm restart sees only the
         live generation. *)
      Persist.stop p;
      let store2 = Store.create ~backend:Store.Rp () in
      let p2 = Persist.attach ~aof:true ~dir store2 in
      Alcotest.(check int) "items recovered" 4 (Store.items store2);
      Persist.stop p2)

(* --- adaptive sampling and the persistence actuators --- *)

let test_adaptive_sampling_and_persist_actuators () =
  with_dir (fun dir ->
      let base = Rp_trace.sample_every () in
      Fun.protect
        ~finally:(fun () -> Rp_trace.configure ~sample:base ())
        (fun () ->
          Rp_trace.configure ~sample:1024 ();
          let store = Store.create ~backend:Store.Rp () in
          let g = Guard.install ~interval:10.0 store in
          let p =
            Persist.attach ~aof:true ~fsync:Rp_persist.Oplog.Always ~dir store
          in
          Guard.watch_persist g ~error_window:10.0 p;
          let pressure = ref 0.0 in
          Rp_guard.add_source g ~name:"test" (fun () -> !pressure);
          (* Throttle: denser tracing, persistence untouched. *)
          pressure := 0.72;
          Rp_guard.sweep g;
          Alcotest.(check int) "incident sampling" 64 (Rp_trace.sample_every ());
          Alcotest.(check bool) "snapshots running" false (Persist.paused p);
          (* Emergency: snapshots pause, fsync relaxes to group commit. *)
          pressure := 2.0;
          Rp_guard.sweep g;
          Alcotest.(check bool) "snapshots paused" true (Persist.paused p);
          (match Persist.fsync_policy p with
          | Some (Rp_persist.Oplog.Every _) -> ()
          | _ -> Alcotest.fail "fsync must relax to group commit");
          (* Recovery: everything reverts. *)
          pressure := 0.0;
          Rp_guard.sweep g;
          Alcotest.check state "healthy again" Rp_guard.Healthy
            (Rp_guard.state g);
          Alcotest.(check int) "base sampling restored" 1024
            (Rp_trace.sample_every ());
          Alcotest.(check bool) "snapshots resumed" false (Persist.paused p);
          (match Persist.fsync_policy p with
          | Some Rp_persist.Oplog.Always -> ()
          | _ -> Alcotest.fail "fsync must revert to Always");
          Persist.stop p))

let test_append_failure_latch () =
  with_dir (fun dir ->
      let store = Store.create ~backend:Store.Rp () in
      let p =
        Persist.attach ~aof:true ~fsync:Rp_persist.Oplog.Always ~dir store
      in
      Alcotest.(check (option Alcotest.reject)) "no error yet" None
        (Option.map ignore (Persist.last_append_error_age p));
      Rp_fault.arm ~seed:1 "persist.log.append"
        ~trigger:(Rp_fault.Probability 1.0) ~action:Rp_fault.Raise;
      (* The mutation still acks — durability degrades, service does not. *)
      Alcotest.(check bool) "set acked" true
        (Store.set store ~key:"a" ~flags:0 ~exptime:0 ~data:"1" = Store.Stored);
      Rp_fault.disarm "persist.log.append";
      Alcotest.(check bool) "failure counted" true (Persist.append_errors p > 0);
      Alcotest.(check bool) "latched" true
        (Persist.last_append_error_age p <> None);
      (* The next successful append clears the latch. *)
      ignore (Store.set store ~key:"b" ~flags:0 ~exptime:0 ~data:"2");
      Alcotest.(check (option Alcotest.reject)) "cleared" None
        (Option.map ignore (Persist.last_append_error_age p));
      Persist.stop p)

(* --- connection admission --- *)

let test_admission_cap () =
  let store = Store.create ~backend:Store.Rp () in
  ignore (Store.set store ~key:"k" ~flags:0 ~exptime:0 ~data:"v");
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rp-guard-admit-%d.sock" (Unix.getpid ()))
  in
  let config = { Server.default_config with max_inflight = 1 } in
  let server = Server.start ~store ~config (Server.Unix_socket path) in
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      Alcotest.(check int) "capacity is the inflight cap" 1
        (Server.capacity server);
      let c1 = Client.connect (Server.Unix_socket path) in
      Alcotest.(check bool) "first conn serves" true
        (Client.get c1 "k" <> None);
      let c2 = Client.connect (Server.Unix_socket path) in
      (match Client.request c2 (Protocol.Get [ "k" ]) with
      | Protocol.Server_error "overloaded" -> ()
      | r ->
          Alcotest.failf "second conn not refused: %s"
            (Protocol.encode_response r)
      | exception _ -> () (* refusal raced the request write: also fine *));
      Client.close c2;
      Client.close c1)

let () =
  Alcotest.run "guard"
    [
      ( "watermarks",
        [ Alcotest.test_case "parse" `Quick test_watermarks_parse ] );
      ( "ladder",
        [
          Alcotest.test_case "up jumps" `Quick test_ladder_up_jumps;
          Alcotest.test_case "hysteresis" `Quick test_ladder_hysteresis;
          Alcotest.test_case "latch + gates" `Quick test_ladder_latch_and_gates;
          Alcotest.test_case "source failure" `Quick
            test_source_failure_keeps_last;
          Alcotest.test_case "listeners + instruments" `Quick
            test_listeners_and_instruments;
        ] );
      ( "shedding",
        [
          Alcotest.test_case "text protocol" `Quick test_text_shed;
          Alcotest.test_case "binary protocol" `Quick test_binary_shed;
          Alcotest.test_case "stats without guard" `Quick
            test_guard_stats_disabled;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "post-recovery sweep" `Quick
            test_post_recovery_sweep;
          Alcotest.test_case "op-log size rotation" `Quick
            test_oplog_size_rotation;
          Alcotest.test_case "bounded archives" `Quick
            test_compaction_archives_bounded;
          Alcotest.test_case "append-failure latch" `Quick
            test_append_failure_latch;
        ] );
      ( "actuators",
        [
          Alcotest.test_case "sampling + persist" `Quick
            test_adaptive_sampling_and_persist_actuators;
        ] );
      ( "admission",
        [ Alcotest.test_case "inflight cap" `Quick test_admission_cap ] );
    ]
