(* The workload-insight plane: Space-Saving sketch correctness on a
   Zipfian stream, torn-entry safety under concurrent multi-domain
   recording, the stats-reset contract, full exposition round-trips,
   and the hot-path overhead guard for a heat-enabled store. *)

let key = Rp_workload.Keygen.string_key

(* --- Space-Saving correctness on a Zipfian stream ------------------ *)

(* Feed a deterministic Zipf(0.99) stream through one sketch instance
   and compare against exact counts: the reported estimates must honor
   the Space-Saving bounds (count is an overestimate, count - err a
   lower bound, err at most N/k), and the hottest key of the stream
   must surface as the merged top-1. *)
let test_sketch_zipfian () =
  let n = 200_000 and keyspace = 10_000 and k = 64 in
  let sketch = Rp_heat.Sketch.create ~k in
  let exact = Hashtbl.create keyspace in
  let keygen =
    Rp_workload.Keygen.create ~dist:(Rp_workload.Keygen.Zipfian 0.99)
      ~keyspace ~seed:11 ~worker:0 ()
  in
  for _ = 1 to n do
    let s = key (Rp_workload.Keygen.next_key keygen) in
    Rp_heat.Sketch.record sketch s;
    Hashtbl.replace exact s (1 + Option.value ~default:0 (Hashtbl.find_opt exact s))
  done;
  Alcotest.(check int) "stream length" n (Rp_heat.Sketch.total sketch);
  let top = Rp_heat.Sketch.top sketch in
  Alcotest.(check int) "k entries tracked" k (List.length top);
  let true_count s = Option.value ~default:0 (Hashtbl.find_opt exact s) in
  List.iter
    (fun (e : Rp_heat.Sketch.entry) ->
      let t = true_count e.key in
      if e.count < t then
        Alcotest.failf "%s: estimate %d below true count %d" e.key e.count t;
      if e.count - e.err > t then
        Alcotest.failf "%s: lower bound %d above true count %d" e.key
          (e.count - e.err) t;
      if e.err > n / k then
        Alcotest.failf "%s: err %d exceeds N/k = %d" e.key e.err (n / k))
    top;
  (* Zipf rank 0 is the stream's true argmax by a wide margin; it must
     be the sketch's top-1 and, having entered the sketch early, carry
     a tight (near-zero) error bound. *)
  let hottest =
    Hashtbl.fold
      (fun s c (bs, bc) -> if c > bc then (s, c) else (bs, bc))
      exact ("", 0)
  in
  let top1 = List.hd top in
  Alcotest.(check string) "top-1 is the true argmax" (fst hottest) top1.key;
  Alcotest.(check string) "top-1 is Zipf rank 0" (key 0) top1.key;
  Alcotest.(check int) "top-1 count is exact" (snd hottest)
    (top1.count - top1.err);
  (* Sorted count-descending. *)
  ignore
    (List.fold_left
       (fun prev (e : Rp_heat.Sketch.entry) ->
         if e.count > prev then Alcotest.failf "top not sorted";
         e.count)
       max_int top);
  (* Reset forgets everything. *)
  Rp_heat.Sketch.reset sketch;
  Alcotest.(check int) "reset clears the stream" 0 (Rp_heat.Sketch.total sketch);
  Alcotest.(check int) "reset clears the entries" 0
    (List.length (Rp_heat.Sketch.top sketch))

(* --- concurrent multi-domain recording ----------------------------- *)

(* Four recorder domains hammer disjoint key sets (each set smaller
   than k, so nothing is ever evicted and the merged counts must come
   out exact) while a reader merges continuously. Any torn entry —
   a key from a half-written replacement, a negative count — fails
   the reader's well-formedness check. *)
let test_sketch_concurrent () =
  let k = 64 and domains = 4 and distinct = 16 and per_key = 5_000 in
  let sketch = Rp_heat.Sketch.create ~k in
  let stop = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        let polls = ref 0 in
        while not (Atomic.get stop) do
          List.iter
            (fun (e : Rp_heat.Sketch.entry) ->
              if String.length e.key = 0 then failwith "torn: empty key";
              if e.count <= 0 then failwith "torn: non-positive count";
              if e.err < 0 then failwith "torn: negative err")
            (Rp_heat.Sketch.top sketch);
          incr polls
        done;
        !polls)
  in
  let recorders =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to distinct - 1 do
              for _ = 1 to per_key do
                Rp_heat.Sketch.record sketch (Printf.sprintf "d%d:%04d" d i)
              done
            done))
  in
  List.iter Domain.join recorders;
  Atomic.set stop true;
  let polls = Domain.join reader in
  Alcotest.(check bool) "reader merged while recording" true (polls > 0);
  (* Quiesced: every key exact, err 0 (no sketch ever overflowed). *)
  Alcotest.(check int) "merged stream length" (domains * distinct * per_key)
    (Rp_heat.Sketch.total sketch);
  let top = Rp_heat.Sketch.top sketch in
  Alcotest.(check int) "all keys tracked" (domains * distinct)
    (List.length top);
  List.iter
    (fun (e : Rp_heat.Sketch.entry) ->
      Alcotest.(check int) (e.key ^ " exact") per_key e.count;
      Alcotest.(check int) (e.key ^ " err") 0 e.err)
    top

(* --- store wiring and exposition round-trips ----------------------- *)

let handle store req =
  match Memcached.Server.handle store req with
  | Some r -> r
  | None -> Alcotest.fail "no response"

let test_store_exposition () =
  let store =
    (* sample 1: every operation recorded, so counts are exact *)
    Memcached.Store.create ~backend:Memcached.Store.Rp ~heat_topk:16
      ~heat_sample:1 ()
  in
  for i = 0 to 63 do
    ignore
      (Memcached.Store.set store ~key:(key i) ~flags:0 ~exptime:0 ~data:"v")
  done;
  (* A skewed read mix: key 0 dominates, one miss, one delete. *)
  for _ = 1 to 50 do
    ignore (Memcached.Store.get store (key 0))
  done;
  ignore (Memcached.Store.get store (key 1));
  ignore (Memcached.Store.get store "absent");
  ignore (Memcached.Store.delete store (key 63));
  (* stats heat (text plane). *)
  let kvs =
    match handle store (Memcached.Protocol.Stats (Some "heat")) with
    | Memcached.Protocol.Stats_reply kvs -> kvs
    | _ -> Alcotest.fail "stats heat: not a stats reply"
  in
  Alcotest.(check (option string)) "plane enabled" (Some "1")
    (List.assoc_opt "heat_enabled" kvs);
  Alcotest.(check (option string)) "hottest hit key" (Some (key 0))
    (List.assoc_opt "heat_top_hits_0_key" kvs);
  Alcotest.(check (option string)) "hottest hit count" (Some "50")
    (List.assoc_opt "heat_top_hits_0_count" kvs);
  Alcotest.(check (option string)) "hottest miss" (Some "absent")
    (List.assoc_opt "heat_top_misses_0_key" kvs);
  Alcotest.(check bool) "mutations tracked" true
    (List.mem_assoc "heat_top_mutations_0_key" kvs);
  Alcotest.(check bool) "size histogram exported" true
    (List.mem_assoc "heat_get_value_bytes_count" kvs);
  Alcotest.(check bool) "stripe heatmap exported" true
    (List.exists
       (fun (k, _) ->
         String.length k >= 24 && String.sub k 0 24 = "heat_stripe_acquisitions")
       kvs);
  (* The default section must not leak heat internals, and vice versa
     the plane must surface in Prometheus and JSON. *)
  let default = Memcached.Store.stats store in
  Alcotest.(check bool) "default stats exclude heat" false
    (List.exists (fun (k, _) -> String.length k >= 5 && String.sub k 0 5 = "heat_")
       default);
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn > 0 && go 0
  in
  let prom = Rp_obs.Registry.to_prometheus (Memcached.Store.registry store) in
  Alcotest.(check bool) "prometheus labeled top-k gauge" true
    (contains prom (Printf.sprintf "heat_topk_hits{key=%S} 50" (key 0)));
  Alcotest.(check bool) "prometheus tracked counter" true
    (contains prom "# TYPE heat_hits_tracked_total counter");
  (* heat dump (wire plane): one JSON document, top-n bounded. *)
  let json =
    match handle store (Memcached.Protocol.Heat_dump (Some 1)) with
    | Memcached.Protocol.Trace_json j -> j
    | _ -> Alcotest.fail "heat dump: not a json reply"
  in
  Alcotest.(check bool) "dump is a json object" true
    (String.length json > 0 && json.[0] = '{');
  Alcotest.(check bool) "dump carries the hot key" true
    (contains json (key 0));
  Alcotest.(check bool) "dump respects n" false (contains json (key 5));
  Alcotest.(check bool) "json endpoint document" true
    (contains (Memcached.Store.heat_json store) "\"heat_enabled\":true");
  (* The wire round-trip of the new verb itself. *)
  (match
     Memcached.Protocol.Parser.next
       (let p = Memcached.Protocol.Parser.create () in
        Memcached.Protocol.Parser.feed p
          (Memcached.Protocol.encode_request
             (Memcached.Protocol.Heat_dump (Some 5)));
        p)
   with
  | Some (Ok (Memcached.Protocol.Heat_dump (Some 5))) -> ()
  | _ -> Alcotest.fail "heat dump 5 did not round-trip");
  (* A store without the plane answers disabled everywhere. *)
  let off = Memcached.Store.create ~backend:Memcached.Store.Rp () in
  Alcotest.(check (option string)) "plane off" (Some "0")
    (List.assoc_opt "heat_enabled" (Memcached.Store.heat_stats off));
  Alcotest.(check string) "json off" "{\"heat_enabled\":false}"
    (Memcached.Store.heat_json off)

(* --- stats reset --------------------------------------------------- *)

let test_stats_reset () =
  let store =
    Memcached.Store.create ~backend:Memcached.Store.Rp ~heat_topk:8
      ~heat_sample:1 ()
  in
  ignore (Memcached.Store.set store ~key:"hot" ~flags:0 ~exptime:0 ~data:"vvvv");
  for _ = 1 to 10 do
    ignore (Memcached.Store.get store "hot")
  done;
  let stat_of kvs name = List.assoc_opt name kvs in
  let before = Memcached.Store.heat_stats store in
  Alcotest.(check (option string)) "sketch populated" (Some "hot")
    (stat_of before "heat_top_hits_0_key");
  Alcotest.(check (option string)) "size histogram populated" (Some "10")
    (stat_of before "heat_get_value_bytes_count");
  let cmd_get_before =
    stat_of (Memcached.Store.stats store) "cmd_get"
  in
  (* [stats reset] over the wire answers END (an empty stats reply). *)
  (match handle store (Memcached.Protocol.Stats (Some "reset")) with
  | Memcached.Protocol.Stats_reply [] -> ()
  | _ -> Alcotest.fail "stats reset: not an empty stats reply");
  let after = Memcached.Store.heat_stats store in
  Alcotest.(check (option string)) "sketch cleared" None
    (stat_of after "heat_top_hits_0_key");
  Alcotest.(check (option string)) "size histogram cleared" (Some "0")
    (stat_of after "heat_get_value_bytes_count");
  (* The non-resettable counters survive — a reset must never destroy
     the monotonic series scrapers rate() over. *)
  Alcotest.(check (option string)) "cmd_get survives reset" cmd_get_before
    (stat_of (Memcached.Store.stats store) "cmd_get");
  Alcotest.(check bool) "cmd_get was non-zero" true (cmd_get_before <> None)

(* --- hot-path overhead guard --------------------------------------- *)

(* GET cost with --heat-topk 64 on vs off, same keys, same store shape:
   the sketch tax must stay within the same 1.15x envelope the other
   observability planes honor (mirrors test_obs's guard: min over
   alternating rounds so both sides see the same scheduler weather). *)
let test_heat_overhead () =
  let keyspace = 4096 in
  let make ~heat_topk =
    let store =
      Memcached.Store.create ~backend:Memcached.Store.Rp ~initial_size:4096
        ~heat_topk ()
    in
    for i = 0 to keyspace - 1 do
      ignore
        (Memcached.Store.set store ~key:(key i) ~flags:0 ~exptime:0 ~data:"v")
    done;
    store
  in
  let store_off = make ~heat_topk:0 in
  let store_on = make ~heat_topk:64 in
  let zkeys =
    let kg =
      Rp_workload.Keygen.create ~dist:(Rp_workload.Keygen.Zipfian 0.99)
        ~keyspace ~seed:3 ~worker:0 ()
    in
    Array.init 4096 (fun _ -> key (Rp_workload.Keygen.next_key kg))
  in
  let iters = 200_000 in
  let time store =
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    for i = 0 to iters - 1 do
      ignore (Memcached.Store.get store zkeys.(i land 4095))
    done;
    Unix.gettimeofday () -. t0
  in
  (* Warm both paths once. *)
  ignore (time store_off);
  ignore (time store_on);
  let best_off = ref infinity and best_on = ref infinity in
  let rounds () =
    for _ = 1 to 7 do
      best_off := Float.min !best_off (time store_off);
      best_on := Float.min !best_on (time store_on)
    done
  in
  rounds ();
  (* One re-measure on a blown budget (as the bench lane does): on this
     single-core box a first miss is usually scheduler weather; a real
     regression fails both passes. *)
  if !best_on /. !best_off > 1.15 then rounds ();
  let ratio = !best_on /. !best_off in
  Printf.printf "heat-on GET cost: %.2fx (off %.0f ns, on %.0f ns)\n%!" ratio
    (!best_off /. float_of_int iters *. 1e9)
    (!best_on /. float_of_int iters *. 1e9);
  if ratio > 1.15 then
    Alcotest.failf "heat-enabled GETs cost %.2fx the bare path (budget 1.15x)"
      ratio;
  (* The measured traffic must show up in the sketch: with the default
     head sampling the scaled hit total covers at least one full round
     of the 8 the guard ran. *)
  match Memcached.Store.heat store_on with
  | None -> Alcotest.fail "store_on lost its heat plane"
  | Some h ->
      let tracked =
        Rp_heat.Sketch.total (Rp_heat.hits h) * Rp_heat.sample_every h
      in
      Alcotest.(check bool) "sampled GETs cover the measured traffic" true
        (tracked >= iters)

let () =
  Alcotest.run "rp_heat"
    [
      ( "sketch",
        [
          Alcotest.test_case "zipfian stream bounds" `Quick
            test_sketch_zipfian;
          Alcotest.test_case "concurrent recording" `Quick
            test_sketch_concurrent;
        ] );
      ( "store",
        [
          Alcotest.test_case "exposition round-trips" `Quick
            test_store_exposition;
          Alcotest.test_case "stats reset" `Quick test_stats_reset;
        ] );
      ( "overhead",
        [ Alcotest.test_case "heat-on GET guard" `Slow test_heat_overhead ] );
    ]
