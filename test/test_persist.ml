(* The persistence plane, bottom-up: CRC framing, record codec, atomic
   snapshots, op-log replay with torn-tail truncation, and the manager's
   full attach -> mutate -> snapshot -> crash -> warm-restart cycle. *)

open Rp_persist

(* --- scratch directories (flat; every test gets a fresh one) --- *)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let fresh_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "rp-persist-test-%d-%d" (Unix.getpid ()) !ctr)
    in
    rm_rf dir;
    Unix.mkdir dir 0o755;
    dir

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let append_file path s =
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc s;
  close_out oc

(* --- crc32 --- *)

let test_crc32_vectors () =
  Alcotest.(check int) "empty" 0 (Crc32.string "");
  (* The IEEE 802.3 check value. *)
  Alcotest.(check int) "123456789" 0xCBF43926 (Crc32.string "123456789");
  Alcotest.(check int) "fox" 0x414FA339
    (Crc32.string "The quick brown fox jumps over the lazy dog")

let test_crc32_incremental () =
  let s = "stream of bytes, checksummed in pieces" in
  let crc = Crc32.update 0 s ~pos:0 ~len:10 in
  let crc = Crc32.update crc s ~pos:10 ~len:(String.length s - 10) in
  Alcotest.(check int) "incremental = one-shot" (Crc32.string s) crc;
  Alcotest.(check bool) "differs from a different string" true
    (Crc32.string s <> Crc32.string (s ^ "!"))

(* --- frame --- *)

let frames payloads =
  let buf = Buffer.create 256 in
  List.iter (Frame.add buf) payloads;
  Buffer.contents buf

let read_all path =
  let ic = open_in_bin path in
  let rec go acc =
    match Frame.read ic with
    | Frame.Record p -> go (p :: acc)
    | Frame.End ->
        close_in ic;
        Ok (List.rev acc)
    | Frame.Torn off ->
        close_in ic;
        Error (List.rev acc, off)
  in
  go []

let test_frame_roundtrip () =
  with_dir (fun dir ->
      let path = Filename.concat dir "frames" in
      let payloads = [ "alpha"; ""; "\x00\xff\x01binary\n" ] in
      write_file path (frames payloads);
      match read_all path with
      | Ok got -> Alcotest.(check (list string)) "payloads" payloads got
      | Error _ -> Alcotest.fail "unexpected torn frame")

let test_frame_torn_truncated () =
  with_dir (fun dir ->
      let path = Filename.concat dir "frames" in
      let whole = frames [ "first" ] in
      (* A second frame cut off mid-payload. *)
      let torn = frames [ "second-never-lands" ] in
      write_file path (whole ^ String.sub torn 0 (String.length torn - 3));
      match read_all path with
      | Ok _ -> Alcotest.fail "torn tail not detected"
      | Error (got, off) ->
          Alcotest.(check (list string)) "durable prefix" [ "first" ] got;
          Alcotest.(check int) "offset of the bad frame" (String.length whole) off)

let test_frame_torn_corrupt () =
  with_dir (fun dir ->
      let path = Filename.concat dir "frames" in
      let encoded = frames [ "aaaa"; "bbbb" ] in
      (* Flip a byte inside the second frame's payload. *)
      let b = Bytes.of_string encoded in
      Bytes.set b (String.length encoded - 1) 'X';
      write_file path (Bytes.to_string b);
      match read_all path with
      | Ok _ -> Alcotest.fail "corruption not detected"
      | Error (got, off) ->
          Alcotest.(check (list string)) "durable prefix" [ "aaaa" ] got;
          Alcotest.(check int) "offset" (Frame.header_bytes + 4) off)

let test_frame_torn_huge_length () =
  with_dir (fun dir ->
      let path = Filename.concat dir "frames" in
      (* A header claiming a payload far beyond max_payload: corruption,
         not an allocation request. *)
      let b = Bytes.create 8 in
      Bytes.set_int32_be b 0 0x7fffffffl;
      Bytes.set_int32_be b 4 0l;
      write_file path (frames [ "ok" ] ^ Bytes.to_string b);
      match read_all path with
      | Ok _ -> Alcotest.fail "huge length accepted"
      | Error (got, _) -> Alcotest.(check (list string)) "prefix" [ "ok" ] got)

let test_frame_max_payload () =
  let buf = Buffer.create 16 in
  Alcotest.check_raises "oversized payload rejected"
    (Invalid_argument "Frame.add: payload too large") (fun () ->
      Frame.add buf (String.make (Frame.max_payload + 1) 'x'))

(* --- record --- *)

let sample_set =
  Record.Set
    {
      op = Record.Tcas;
      key = "key with spaces";
      flags = 0xDEADBEEF;
      exptime = 1_000_000_060.25;
      cas = 123_456_789_012;
      data = "\x00\x01\xffraw bytes";
    }

let test_record_roundtrip () =
  let roundtrip r = Alcotest.(check bool) "roundtrip" true (Record.decode (Record.encode r) = Ok r) in
  roundtrip sample_set;
  roundtrip (Record.Set { op = Record.Tset; key = ""; flags = 0; exptime = 0.; cas = 0; data = "" });
  roundtrip (Record.Delete "victim");
  roundtrip Record.Flush_all

let test_record_rejects_malformed () =
  let bad s =
    match Record.decode s with
    | Ok _ -> Alcotest.failf "decoded malformed %S" s
    | Error _ -> ()
  in
  bad "";
  bad "\x09";
  bad "not a record at all";
  (* A valid record with trailing garbage must not decode. *)
  bad (Record.encode (Record.Delete "k") ^ "x")

(* --- snapshot --- *)

let set_record i =
  Record.Set
    {
      op = Record.Tset;
      key = Printf.sprintf "k%04d" i;
      flags = i;
      exptime = 0.;
      cas = i + 1;
      data = String.make (1 + (i mod 32)) 'v';
    }

let write_snapshot ~dir ~gen n =
  Snapshot.write ~dir ~gen ~iter:(fun emit ->
      for i = 0 to n - 1 do
        emit (set_record i)
      done)

let test_snapshot_write_validate_load () =
  with_dir (fun dir ->
      Alcotest.(check int) "records written" 10 (write_snapshot ~dir ~gen:3 10);
      Alcotest.(check int) "records written" 20 (write_snapshot ~dir ~gen:7 20);
      (match Snapshot.files ~dir with
      | [ (3, _); (7, _) ] -> ()
      | _ -> Alcotest.fail "expected gens 3 and 7 ascending");
      (match Snapshot.validate (Filename.concat dir (Snapshot.filename ~gen:7)) with
      | Ok (gen, count) ->
          Alcotest.(check int) "validated gen" 7 gen;
          Alcotest.(check int) "validated count" 20 count
      | Error e -> Alcotest.failf "validate: %s" e);
      let got = ref [] in
      match Snapshot.load_newest ~dir ~f:(fun r -> got := r :: !got) with
      | Some (gen, count) ->
          Alcotest.(check int) "newest gen" 7 gen;
          Alcotest.(check int) "count" 20 count;
          Alcotest.(check bool) "streamed the records" true
            (List.rev !got = List.init 20 set_record)
      | None -> Alcotest.fail "no snapshot loaded")

let test_snapshot_rejects_torn_falls_back () =
  with_dir (fun dir ->
      ignore (write_snapshot ~dir ~gen:1 5);
      ignore (write_snapshot ~dir ~gen:2 8);
      (* Chop the trailer off gen 2: no completeness witness, whole file
         rejected, recovery falls back to gen 1. *)
      let newest = Filename.concat dir (Snapshot.filename ~gen:2) in
      let s = read_file newest in
      write_file newest (String.sub s 0 (String.length s - 10));
      (match Snapshot.validate newest with
      | Ok _ -> Alcotest.fail "torn snapshot validated"
      | Error _ -> ());
      let n = ref 0 in
      match Snapshot.load_newest ~dir ~f:(fun _ -> incr n) with
      | Some (gen, count) ->
          Alcotest.(check int) "fell back to gen 1" 1 gen;
          Alcotest.(check int) "gen 1 record count" 5 count;
          Alcotest.(check int) "streamed gen 1 only" 5 !n
      | None -> Alcotest.fail "valid older snapshot skipped")

let test_snapshot_failed_write_leaves_nothing () =
  with_dir (fun dir ->
      ignore (write_snapshot ~dir ~gen:1 4);
      let crash site =
        Rp_fault.arm site ~trigger:Rp_fault.Always ~action:Rp_fault.Raise;
        (try
           ignore (write_snapshot ~dir ~gen:2 4);
           Alcotest.failf "%s did not raise" site
         with Rp_fault.Injected _ -> ());
        Rp_fault.disarm site;
        Alcotest.(check (list string))
          (site ^ " leaves only gen 1")
          [ Snapshot.filename ~gen:1 ]
          (List.sort compare (Array.to_list (Sys.readdir dir)))
      in
      (* Mid-walk crash and crash in the pre-rename window: both must leave
         the directory exactly as it was (no tmp, no partial final). *)
      crash "persist.snapshot.record";
      crash "persist.snapshot.rename")

(* --- oplog --- *)

let test_oplog_policy_parse () =
  let ok s p =
    match Oplog.policy_of_string s with
    | Ok got -> Alcotest.(check bool) s true (got = p)
    | Error e -> Alcotest.failf "%s: %s" s e
  in
  ok "always" Oplog.Always;
  ok "never" Oplog.Never;
  ok "every:100" (Oplog.Every 0.1);
  Alcotest.(check string) "name roundtrip" "every:100"
    (Oplog.policy_name (Oplog.Every 0.1));
  match Oplog.policy_of_string "sometimes" with
  | Ok _ -> Alcotest.fail "parsed garbage policy"
  | Error _ -> ()

let replay_records ~dir ~from_gen =
  let got = ref [] in
  let r = Oplog.replay ~dir ~from_gen ~f:(fun x -> got := x :: !got) in
  (r, List.rev !got)

let test_oplog_append_rotate_replay () =
  with_dir (fun dir ->
      let log = Oplog.open_ ~dir ~gen:1 ~fsync:Oplog.Always () in
      Oplog.append log (set_record 0);
      Oplog.append log (set_record 1);
      Alcotest.(check int) "gen" 1 (Oplog.gen log);
      Oplog.rotate log ~gen:2;
      Oplog.append log (Record.Delete "k0000");
      Oplog.close log;
      Alcotest.(check int) "two segments" 2 (List.length (Oplog.segments ~dir));
      let r, got = replay_records ~dir ~from_gen:1 in
      Alcotest.(check int) "records" 3 r.Oplog.records;
      Alcotest.(check int) "segments visited" 2 r.Oplog.segments;
      Alcotest.(check int) "no torn tail" 0 r.Oplog.truncated_bytes;
      Alcotest.(check bool) "order preserved" true
        (got = [ set_record 0; set_record 1; Record.Delete "k0000" ]);
      (* Replay from the rotation point skips the older segment. *)
      let r2, got2 = replay_records ~dir ~from_gen:2 in
      Alcotest.(check int) "newer records only" 1 r2.Oplog.records;
      Alcotest.(check bool) "newer content" true (got2 = [ Record.Delete "k0000" ]))

let test_oplog_torn_tail_truncated () =
  with_dir (fun dir ->
      let log = Oplog.open_ ~dir ~gen:1 ~fsync:Oplog.Always () in
      Oplog.append log (set_record 0);
      Oplog.close log;
      let path = Filename.concat dir (Oplog.filename ~gen:1) in
      let clean_len = (Unix.stat path).Unix.st_size in
      (* A crashed in-flight append: header promising 64 bytes, 5 present. *)
      append_file path "\x00\x00\x00\x40\x00\x00\x00\x00torn!";
      let r, got = replay_records ~dir ~from_gen:1 in
      Alcotest.(check int) "durable record survived" 1 r.Oplog.records;
      Alcotest.(check int) "torn bytes cut" 13 r.Oplog.truncated_bytes;
      Alcotest.(check bool) "content" true (got = [ set_record 0 ]);
      Alcotest.(check int) "file truncated back" clean_len
        (Unix.stat path).Unix.st_size;
      (* Second replay sees a clean file. *)
      let r2, _ = replay_records ~dir ~from_gen:1 in
      Alcotest.(check int) "clean on re-replay" 0 r2.Oplog.truncated_bytes)

let test_oplog_reopen_appends () =
  with_dir (fun dir ->
      let log = Oplog.open_ ~dir ~gen:1 ~fsync:Oplog.Never () in
      Oplog.append log (set_record 0);
      Oplog.sync log;
      Oplog.close log;
      (* Reopening an existing segment must append, not rewrite the header. *)
      let log = Oplog.open_ ~dir ~gen:1 ~fsync:Oplog.Always () in
      Oplog.append log (set_record 1);
      Oplog.close log;
      let r, got = replay_records ~dir ~from_gen:1 in
      Alcotest.(check int) "both appends" 2 r.Oplog.records;
      Alcotest.(check bool) "order" true (got = [ set_record 0; set_record 1 ]))

(* Replay is idempotent under at-least-once delivery: the replication
   plane re-sends whole segments on reconnect and overlaps its catch-up
   and live sources, so a batch applied twice — or a batch whose prefix
   was already applied — must converge to the same store. *)
let apply_to_model model = function
  | Record.Set { key; data; _ } -> Hashtbl.replace model key data
  | Record.Delete key -> Hashtbl.remove model key
  | Record.Flush_all -> Hashtbl.reset model

let model_of records =
  let m = Hashtbl.create 64 in
  List.iter (apply_to_model m) records;
  m

let check_models label a b =
  Alcotest.(check int) (label ^ ": size") (Hashtbl.length a) (Hashtbl.length b);
  Hashtbl.iter
    (fun k v ->
      match Hashtbl.find_opt b k with
      | Some v' when v' = v -> ()
      | Some v' -> Alcotest.failf "%s: %s = %S, duplicated run got %S" label k v v'
      | None -> Alcotest.failf "%s: %s missing after duplicated replay" label k)
    a

let test_oplog_replay_idempotent_duplicates () =
  with_dir (fun dir ->
      (* A batch that overwrites, deletes, and re-adds — then the whole
         batch again (a full re-send), then a partial re-send of its
         tail. One clean pass must equal the duplicated mess. *)
      let batch =
        List.init 16 set_record
        @ [ Record.Delete "k0003"; Record.Delete "k0099" (* no-op delete *) ]
        @ List.init 4 (fun i -> set_record (i + 8))
      in
      let tail_resend =
        (* Partial re-send: the last 6 records again, as a reconnecting
           follower would see when its ack watermark lags its applies. *)
        List.filteri (fun i _ -> i >= List.length batch - 6) batch
      in
      let log = Oplog.open_ ~dir ~gen:1 ~fsync:Oplog.Never () in
      List.iter (Oplog.append log) batch;
      List.iter (Oplog.append log) batch;
      List.iter (Oplog.append log) tail_resend;
      Oplog.sync log;
      Oplog.close log;
      let replayed = Hashtbl.create 64 in
      let r =
        Oplog.replay ~dir ~from_gen:1 ~f:(apply_to_model replayed)
      in
      Alcotest.(check int) "every duplicate decoded"
        ((2 * List.length batch) + List.length tail_resend)
        r.Oplog.records;
      check_models "duplicated batches" (model_of batch) replayed)

let test_oplog_replay_idempotent_across_segments () =
  with_dir (fun dir ->
      (* The same records land once in gen 1 and again in gen 2 (the
         catch-up/live overlap after a rotation): replaying both segments
         equals replaying one. *)
      let batch = List.init 12 set_record @ [ Record.Delete "k0001" ] in
      let log = Oplog.open_ ~dir ~gen:1 ~fsync:Oplog.Never () in
      List.iter (Oplog.append log) batch;
      Oplog.rotate log ~gen:2;
      List.iter (Oplog.append log) batch;
      Oplog.close log;
      let replayed = Hashtbl.create 64 in
      ignore (Oplog.replay ~dir ~from_gen:1 ~f:(apply_to_model replayed));
      check_models "segment overlap" (model_of batch) replayed;
      (* Flush_all duplicated mid-stream also converges. *)
      let with_flush = batch @ [ Record.Flush_all ] @ batch in
      let log = Oplog.open_ ~dir ~gen:3 ~fsync:Oplog.Never () in
      List.iter (Oplog.append log) with_flush;
      List.iter (Oplog.append log) with_flush;
      Oplog.close log;
      let replayed3 = Hashtbl.create 64 in
      ignore (Oplog.replay ~dir ~from_gen:3 ~f:(apply_to_model replayed3));
      check_models "flush_all duplicated" (model_of with_flush) replayed3)

(* --- live tail cursor (the replication leader's catch-up source) --- *)

let test_oplog_tail_follows_live_appends () =
  with_dir (fun dir ->
      let log = Oplog.open_ ~dir ~gen:1 ~fsync:Oplog.Never () in
      Oplog.append log (set_record 0);
      Oplog.flush log;
      let cur = Oplog.Tail.create ~dir ~from_gen:1 in
      let next_record () =
        match Oplog.Tail.next cur with
        | `Record (gen, payload) -> (
            Alcotest.(check int) "gen" (Oplog.gen log) gen;
            match Record.decode payload with
            | Ok r -> r
            | Error e -> Alcotest.failf "payload decode: %s" e)
        | `Caught_up -> Alcotest.fail "expected a record"
      in
      Alcotest.(check bool) "first" true (next_record () = set_record 0);
      Alcotest.(check bool) "parks at end" true (Oplog.Tail.next cur = `Caught_up);
      (* Appends after the cursor parked: visible after a flush, no
         reopen needed. *)
      Oplog.append log (set_record 1);
      Oplog.append log (set_record 2);
      Alcotest.(check bool) "unflushed bytes invisible" true
        (Oplog.Tail.next cur = `Caught_up);
      Oplog.flush log;
      Alcotest.(check bool) "second" true (next_record () = set_record 1);
      Alcotest.(check bool) "third" true (next_record () = set_record 2);
      (* Rotation: cursor crosses into the new segment. *)
      Oplog.rotate log ~gen:2;
      Oplog.append log (set_record 3);
      Oplog.flush log;
      Alcotest.(check bool) "after rotate" true (next_record () = set_record 3);
      Alcotest.(check int) "cursor gen" 2 (Oplog.Tail.gen cur);
      Oplog.Tail.close cur;
      Oplog.close log)

(* --- manager: attach / snapshot / crash / warm restart --- *)

open Memcached

let make_store ?(backend = Store.Rp) ?(now = ref 1_000_000_000.0) () =
  (Store.create ~backend ~initial_size:64 ~clock:(fun () -> !now) (), now)

let get_data store key =
  Option.map (fun (v : Protocol.value) -> v.vdata) (Store.get store key)

let cas_of store key =
  match Store.get_many store ~with_cas:true [ key ] with
  | [ { vcas = Some c; _ } ] -> c
  | _ -> Alcotest.failf "no cas for %s" key

let with_manager ?snapshot_interval ?aof ?fsync ~dir store f =
  let p = Persist.attach ?snapshot_interval ?aof ?fsync ~dir store in
  Fun.protect ~finally:(fun () -> Persist.stop p) (fun () -> f p)

let test_persist_warm_restart () =
  with_dir (fun dir ->
      let now = ref 1_000_000_000.0 in
      let store, _ = make_store ~now () in
      with_manager ~dir store (fun p ->
          let r = Persist.recovery p in
          Alcotest.(check bool) "cold start" true (r.Persist.snapshot_gen = None);
          for i = 0 to 9 do
            ignore
              (Store.set store
                 ~key:(Printf.sprintf "k%d" i)
                 ~flags:i ~exptime:0 ~data:(Printf.sprintf "v%d" i))
          done;
          ignore (Store.set store ~key:"counter" ~flags:0 ~exptime:0 ~data:"41");
          Alcotest.(check bool) "incr" true (Store.incr store "counter" 1 = Store.Cvalue 42);
          ignore (Store.append store ~key:"k0" ~data:"+tail");
          Alcotest.(check bool) "delete" true (Store.delete store "k9");
          (match Persist.snapshot_now p with
          | Ok n -> Alcotest.(check bool) "snapshot covered the items" true (n >= 10)
          | Error e -> Alcotest.failf "snapshot: %s" e);
          (* Mutations after the snapshot land in the rotated log segment. *)
          ignore (Store.set store ~key:"post" ~flags:7 ~exptime:0 ~data:"snap"));
      let store2, _ = make_store ~now () in
      with_manager ~dir store2 (fun p2 ->
          let r = Persist.recovery p2 in
          Alcotest.(check bool) "recovered from a snapshot" true
            (r.Persist.snapshot_gen <> None);
          Alcotest.(check bool) "log tail replayed" true (r.Persist.log_records >= 1);
          Alcotest.(check int) "no torn tail" 0 r.Persist.log_truncated_bytes;
          Alcotest.(check (option string)) "concat survived" (Some "v0+tail")
            (get_data store2 "k0");
          Alcotest.(check (option string)) "counter survived" (Some "42")
            (get_data store2 "counter");
          Alcotest.(check (option string)) "post-snapshot set survived" (Some "snap")
            (get_data store2 "post");
          Alcotest.(check (option string)) "delete survived" None (get_data store2 "k9");
          (match Store.get store2 "k3" with
          | Some v -> Alcotest.(check int) "flags survived" 3 v.Protocol.vflags
          | None -> Alcotest.fail "k3 lost");
          Alcotest.(check int) "exact item count" 11 (Store.items store2)))

let test_persist_crash_recovery () =
  with_dir (fun dir ->
      let now = ref 1_000_000_000.0 in
      let store, _ = make_store ~now () in
      let p = Persist.attach ~dir store in
      ignore (Store.set store ~key:"acked" ~flags:0 ~exptime:0 ~data:"durable");
      (* Die without syncing or closing, then tear the newest segment's
         tail as an in-flight append would have. *)
      Persist.crash_for_testing p;
      let gen = match Persist.log_gen p with Some g -> g | None -> 1 in
      append_file
        (Filename.concat dir (Oplog.filename ~gen))
        "\x00\x00\x40\x00garbage";
      let store2, _ = make_store ~now () in
      with_manager ~dir store2 (fun p2 ->
          let r = Persist.recovery p2 in
          Alcotest.(check bool) "torn tail truncated" true
            (r.Persist.log_truncated_bytes > 0);
          Alcotest.(check (option string)) "acked op survived the crash"
            (Some "durable") (get_data store2 "acked")))

let test_persist_cas_survives () =
  with_dir (fun dir ->
      let now = ref 1_000_000_000.0 in
      let store, _ = make_store ~now () in
      with_manager ~dir store (fun _ ->
          ignore (Store.set store ~key:"k" ~flags:0 ~exptime:0 ~data:"v"));
      let c1 = cas_of store "k" in
      let store2, _ = make_store ~now () in
      with_manager ~dir store2 (fun _ ->
          Alcotest.(check int) "cas preserved across restart" c1 (cas_of store2 "k");
          (* The recovered CAS must stay a valid optimistic token... *)
          Alcotest.(check bool) "cas command accepts it" true
            (Store.cas store2 ~key:"k" ~flags:0 ~exptime:0 ~data:"w" ~unique:c1
            = Store.Stored);
          (* ...and future allocations must not collide with restored ones. *)
          Alcotest.(check bool) "new cas allocations stay unique" true
            (cas_of store2 "k" > c1)))

let test_persist_expired_dropped_on_restore () =
  with_dir (fun dir ->
      let now = ref 1_000_000_000.0 in
      let store, _ = make_store ~now () in
      with_manager ~dir store (fun _ ->
          ignore (Store.set store ~key:"short" ~flags:0 ~exptime:60 ~data:"v");
          ignore (Store.set store ~key:"forever" ~flags:0 ~exptime:0 ~data:"v"));
      (* Restart two minutes later: the absolute expiry recorded at set
         time has passed, so restore drops the item. *)
      let store2, _ = make_store ~now:(ref 1_000_000_120.0) () in
      with_manager ~dir store2 (fun _ ->
          Alcotest.(check (option string)) "expired record dropped" None
            (get_data store2 "short");
          Alcotest.(check (option string)) "live record kept" (Some "v")
            (get_data store2 "forever");
          Alcotest.(check int) "only the live item" 1 (Store.items store2)))

let test_persist_compaction () =
  with_dir (fun dir ->
      let store, _ = make_store () in
      with_manager ~dir store (fun p ->
          for round = 0 to 2 do
            ignore
              (Store.set store
                 ~key:(Printf.sprintf "r%d" round)
                 ~flags:0 ~exptime:0 ~data:"v");
            match Persist.snapshot_now p with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "snapshot %d: %s" round e
          done;
          (* Each successful snapshot compacts everything older away. *)
          Alcotest.(check int) "one snapshot kept" 1
            (List.length (Snapshot.files ~dir));
          Alcotest.(check bool) "old segments pruned" true
            (List.length (Oplog.segments ~dir) <= 2)))

let test_persist_snapshot_failure_keeps_previous () =
  with_dir (fun dir ->
      let store, _ = make_store () in
      with_manager ~dir store (fun p ->
          ignore (Store.set store ~key:"k" ~flags:0 ~exptime:0 ~data:"v");
          (match Persist.snapshot_now p with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "baseline snapshot: %s" e);
          let before = Snapshot.files ~dir in
          Rp_fault.arm "persist.snapshot.record" ~trigger:Rp_fault.Always
            ~action:Rp_fault.Raise;
          Fun.protect
            ~finally:(fun () -> Rp_fault.disarm "persist.snapshot.record")
            (fun () ->
              match Persist.snapshot_now p with
              | Ok _ -> Alcotest.fail "snapshot succeeded under Raise"
              | Error _ -> ());
          Alcotest.(check bool) "previous snapshot generation intact" true
            (Snapshot.files ~dir = before));
      (* And the store still recovers from the surviving generation. *)
      let store2, _ = make_store () in
      with_manager ~dir store2 (fun _ ->
          Alcotest.(check (option string)) "recovered" (Some "v")
            (get_data store2 "k")))

let test_persist_lock_backend () =
  with_dir (fun dir ->
      let store, _ = make_store ~backend:Store.Lock () in
      with_manager ~dir store (fun p ->
          ignore (Store.set store ~key:"k" ~flags:0 ~exptime:0 ~data:"v");
          match Persist.snapshot_now p with
          | Ok n -> Alcotest.(check int) "snapshot walks the locked table" 1 n
          | Error e -> Alcotest.failf "snapshot: %s" e);
      let store2, _ = make_store ~backend:Store.Lock () in
      with_manager ~dir store2 (fun _ ->
          Alcotest.(check (option string)) "recovered" (Some "v")
            (get_data store2 "k")))

let test_persist_stats_section () =
  with_dir (fun dir ->
      let store, _ = make_store () in
      with_manager ~dir store (fun p ->
          ignore (Store.set store ~key:"k" ~flags:0 ~exptime:0 ~data:"v");
          ignore (Persist.snapshot_now p);
          let stats = Store.persist_stats store in
          let get k =
            match List.assoc_opt k stats with
            | Some v -> v
            | None -> Alcotest.failf "missing persist stat %s" k
          in
          Alcotest.(check string) "enabled" "1" (get "persist_enabled");
          Alcotest.(check string) "aof enabled" "1" (get "persist_aof_enabled");
          Alcotest.(check string) "snapshots" "1" (get "persist_snapshots_total");
          Alcotest.(check bool) "appends counted" true
            (int_of_string (get "persist_log_appends_total") >= 1);
          (* The persist instruments live in their own stats section. *)
          Alcotest.(check bool) "not in plain stats" true
            (List.for_all
               (fun (k, _) -> not (String.length k >= 8 && String.sub k 0 8 = "persist_"))
               (Store.stats store))))

let () =
  Alcotest.run "persist"
    [
      ( "crc32",
        [
          Alcotest.test_case "known vectors" `Quick test_crc32_vectors;
          Alcotest.test_case "incremental" `Quick test_crc32_incremental;
        ] );
      ( "frame",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "torn: truncated" `Quick test_frame_torn_truncated;
          Alcotest.test_case "torn: corrupt byte" `Quick test_frame_torn_corrupt;
          Alcotest.test_case "torn: huge length" `Quick test_frame_torn_huge_length;
          Alcotest.test_case "max payload" `Quick test_frame_max_payload;
        ] );
      ( "record",
        [
          Alcotest.test_case "roundtrip" `Quick test_record_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick test_record_rejects_malformed;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "write/validate/load" `Quick test_snapshot_write_validate_load;
          Alcotest.test_case "torn rejected, falls back" `Quick
            test_snapshot_rejects_torn_falls_back;
          Alcotest.test_case "failed write leaves nothing" `Quick
            test_snapshot_failed_write_leaves_nothing;
        ] );
      ( "oplog",
        [
          Alcotest.test_case "policy parsing" `Quick test_oplog_policy_parse;
          Alcotest.test_case "append/rotate/replay" `Quick test_oplog_append_rotate_replay;
          Alcotest.test_case "torn tail truncated" `Quick test_oplog_torn_tail_truncated;
          Alcotest.test_case "reopen appends" `Quick test_oplog_reopen_appends;
          Alcotest.test_case "replay idempotent: duplicated batches" `Quick
            test_oplog_replay_idempotent_duplicates;
          Alcotest.test_case "replay idempotent: across segments" `Quick
            test_oplog_replay_idempotent_across_segments;
          Alcotest.test_case "tail follows live appends" `Quick
            test_oplog_tail_follows_live_appends;
        ] );
      ( "manager",
        [
          Alcotest.test_case "warm restart" `Quick test_persist_warm_restart;
          Alcotest.test_case "crash + torn tail" `Quick test_persist_crash_recovery;
          Alcotest.test_case "cas survives" `Quick test_persist_cas_survives;
          Alcotest.test_case "expired dropped on restore" `Quick
            test_persist_expired_dropped_on_restore;
          Alcotest.test_case "compaction" `Quick test_persist_compaction;
          Alcotest.test_case "failed snapshot keeps previous" `Quick
            test_persist_snapshot_failure_keeps_previous;
          Alcotest.test_case "lock backend" `Quick test_persist_lock_backend;
          Alcotest.test_case "stats section" `Quick test_persist_stats_section;
        ] );
    ]
