(* memcached text protocol: encoding, incremental parsing, error recovery,
   and request/response round trips. *)

open Memcached

let parse_one input =
  let p = Protocol.Parser.create () in
  Protocol.Parser.feed p input;
  Protocol.Parser.next p

let storage ?(flags = 0) ?(exptime = 0) ?(noreply = false) key data : Protocol.storage =
  { key; flags; exptime; noreply; data }

let test_parse_get () =
  match parse_one "get foo\r\n" with
  | Some (Ok (Protocol.Get [ "foo" ])) -> ()
  | _ -> Alcotest.fail "get foo misparsed"

let test_parse_multi_get () =
  match parse_one "get a b c\r\n" with
  | Some (Ok (Protocol.Get [ "a"; "b"; "c" ])) -> ()
  | _ -> Alcotest.fail "multi-key get misparsed"

let test_parse_gets () =
  match parse_one "gets k1 k2\r\n" with
  | Some (Ok (Protocol.Gets [ "k1"; "k2" ])) -> ()
  | _ -> Alcotest.fail "gets misparsed"

let test_parse_set () =
  match parse_one "set foo 7 0 5\r\nhello\r\n" with
  | Some (Ok (Protocol.Set s)) ->
      Alcotest.(check string) "key" "foo" s.key;
      Alcotest.(check int) "flags" 7 s.flags;
      Alcotest.(check int) "exptime" 0 s.exptime;
      Alcotest.(check bool) "noreply" false s.noreply;
      Alcotest.(check string) "data" "hello" s.data
  | _ -> Alcotest.fail "set misparsed"

let test_parse_set_noreply () =
  match parse_one "set foo 0 60 2 noreply\r\nhi\r\n" with
  | Some (Ok (Protocol.Set s)) ->
      Alcotest.(check bool) "noreply" true s.noreply;
      Alcotest.(check int) "exptime" 60 s.exptime
  | _ -> Alcotest.fail "set noreply misparsed"

let test_parse_cas () =
  match parse_one "cas foo 0 0 2 99\r\nhi\r\n" with
  | Some (Ok (Protocol.Cas (s, 99))) -> Alcotest.(check string) "data" "hi" s.data
  | _ -> Alcotest.fail "cas misparsed"

let test_parse_data_with_crlf_bytes () =
  (* The data block is length-delimited: embedded CRLF must survive. *)
  match parse_one "set k 0 0 9\r\nab\r\ncd\r\n!\r\n" with
  | Some (Ok (Protocol.Set s)) -> Alcotest.(check string) "binary-ish data" "ab\r\ncd\r\n!" s.data
  | _ -> Alcotest.fail "embedded CRLF mishandled"

let test_parse_delete_incr_decr_touch () =
  (match parse_one "delete foo\r\n" with
  | Some (Ok (Protocol.Delete { key = "foo"; noreply = false })) -> ()
  | _ -> Alcotest.fail "delete misparsed");
  (match parse_one "delete foo noreply\r\n" with
  | Some (Ok (Protocol.Delete { noreply = true; _ })) -> ()
  | _ -> Alcotest.fail "delete noreply misparsed");
  (match parse_one "incr counter 5\r\n" with
  | Some (Ok (Protocol.Incr { key = "counter"; delta = 5; noreply = false })) -> ()
  | _ -> Alcotest.fail "incr misparsed");
  (match parse_one "decr counter 2 noreply\r\n" with
  | Some (Ok (Protocol.Decr { delta = 2; noreply = true; _ })) -> ()
  | _ -> Alcotest.fail "decr misparsed");
  match parse_one "touch foo 300\r\n" with
  | Some (Ok (Protocol.Touch { exptime = 300; _ })) -> ()
  | _ -> Alcotest.fail "touch misparsed"

let test_parse_admin () =
  (match parse_one "stats\r\n" with
  | Some (Ok (Protocol.Stats None)) -> ()
  | _ -> Alcotest.fail "stats misparsed");
  (match parse_one "stats rp\r\n" with
  | Some (Ok (Protocol.Stats (Some "rp"))) -> ()
  | _ -> Alcotest.fail "stats rp misparsed");
  (match parse_one "flush_all\r\n" with
  | Some (Ok (Protocol.Flush_all { noreply = false })) -> ()
  | _ -> Alcotest.fail "flush_all misparsed");
  (match parse_one "version\r\n" with
  | Some (Ok Protocol.Version) -> ()
  | _ -> Alcotest.fail "version misparsed");
  match parse_one "quit\r\n" with
  | Some (Ok Protocol.Quit) -> ()
  | _ -> Alcotest.fail "quit misparsed"

let test_parse_errors () =
  (match parse_one "bogus command\r\n" with
  | Some (Error "ERROR") -> ()
  | _ -> Alcotest.fail "unknown verb should be ERROR");
  (match parse_one "set foo bar baz qux\r\n" with
  | Some (Error _) -> ()
  | _ -> Alcotest.fail "malformed set accepted");
  (match parse_one "get\r\n" with
  | Some (Error _) -> ()
  | _ -> Alcotest.fail "get without keys accepted");
  (match parse_one "incr k notanumber\r\n" with
  | Some (Error _) -> ()
  | _ -> Alcotest.fail "non-numeric delta accepted");
  match parse_one "set k 0 0 3\r\nabcd\r\n" with
  | Some (Error "bad data chunk") -> ()
  | other ->
      Alcotest.failf "unterminated data chunk accepted: %s"
        (match other with
        | None -> "None"
        | Some (Ok _) -> "Ok"
        | Some (Error e) -> e)

let test_parser_resyncs_after_error () =
  let p = Protocol.Parser.create () in
  Protocol.Parser.feed p "garbage here\r\nget ok\r\n";
  (match Protocol.Parser.next p with
  | Some (Error _) -> ()
  | _ -> Alcotest.fail "garbage not rejected");
  match Protocol.Parser.next p with
  | Some (Ok (Protocol.Get [ "ok" ])) -> ()
  | _ -> Alcotest.fail "parser did not resync"

let test_incremental_byte_feeding () =
  let p = Protocol.Parser.create () in
  let full = "set incr-key 3 0 5\r\nworld\r\nget incr-key\r\n" in
  let results = ref [] in
  String.iter
    (fun c ->
      Protocol.Parser.feed p (String.make 1 c);
      let rec drain () =
        match Protocol.Parser.next p with
        | Some r ->
            results := r :: !results;
            drain ()
        | None -> ()
      in
      drain ())
    full;
  match List.rev !results with
  | [ Ok (Protocol.Set s); Ok (Protocol.Get [ "incr-key" ]) ] ->
      Alcotest.(check string) "data" "world" s.data
  | _ -> Alcotest.failf "byte-at-a-time parse produced %d results" (List.length !results)

let test_pipelined_requests () =
  let p = Protocol.Parser.create () in
  Protocol.Parser.feed p "get a\r\nget b\r\nset c 0 0 1\r\nx\r\n";
  let seen = ref 0 in
  let rec drain () =
    match Protocol.Parser.next p with
    | Some (Ok _) ->
        incr seen;
        drain ()
    | Some (Error e) -> Alcotest.failf "unexpected error: %s" e
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "three pipelined requests" 3 !seen;
  Alcotest.(check int) "buffer drained" 0 (Protocol.Parser.buffered_bytes p)

let test_key_validation () =
  Alcotest.(check bool) "normal key" true (Protocol.request_key_valid "foo:123");
  Alcotest.(check bool) "empty" false (Protocol.request_key_valid "");
  Alcotest.(check bool) "space" false (Protocol.request_key_valid "a b");
  Alcotest.(check bool) "control char" false (Protocol.request_key_valid "a\nb");
  Alcotest.(check bool) "250 bytes ok" true
    (Protocol.request_key_valid (String.make 250 'k'));
  Alcotest.(check bool) "251 bytes too long" false
    (Protocol.request_key_valid (String.make 251 'k'))

(* Round trip: encode_request then parse yields the original request. *)
let requests_for_roundtrip : Protocol.request list =
  [
    Protocol.Get [ "alpha" ];
    Protocol.Get [ "a"; "b"; "c" ];
    Protocol.Gets [ "x" ];
    Protocol.Set (storage "k" "value");
    Protocol.Add (storage ~flags:9 "k" "v");
    Protocol.Replace (storage ~exptime:120 "k" "v");
    Protocol.Append (storage "k" "suffix");
    Protocol.Prepend (storage "k" "prefix");
    Protocol.Cas (storage "k" "v", 1234);
    Protocol.Delete { key = "k"; noreply = false };
    Protocol.Incr { key = "k"; delta = 3; noreply = false };
    Protocol.Decr { key = "k"; delta = 1; noreply = true };
    Protocol.Touch { key = "k"; exptime = 30; noreply = false };
    Protocol.Stats None;
    Protocol.Stats (Some "rp");
    Protocol.Flush_all { noreply = false };
    Protocol.Version;
    Protocol.Quit;
  ]

let test_request_roundtrip () =
  List.iter
    (fun request ->
      match parse_one (Protocol.encode_request request) with
      | Some (Ok parsed) ->
          if parsed <> request then
            Alcotest.failf "round trip changed: %s"
              (Protocol.encode_request request)
      | Some (Error e) ->
          Alcotest.failf "round trip error %s on %s" e
            (Protocol.encode_request request)
      | None ->
          Alcotest.failf "round trip incomplete on %s"
            (Protocol.encode_request request))
    requests_for_roundtrip

let responses_for_roundtrip : Protocol.response list =
  [
    Protocol.Values [];
    Protocol.Values
      [ { vkey = "k"; vflags = 3; vdata = "hello"; vcas = None } ];
    Protocol.Values
      [
        { vkey = "a"; vflags = 0; vdata = "1"; vcas = Some 7 };
        { vkey = "b"; vflags = 1; vdata = "two\r\nlines"; vcas = Some 8 };
      ];
    Protocol.Stored;
    Protocol.Not_stored;
    Protocol.Exists;
    Protocol.Not_found;
    Protocol.Deleted;
    Protocol.Touched;
    Protocol.Ok_reply;
    Protocol.Version_reply "1.2.3";
    Protocol.Number 42;
    Protocol.Stats_reply [ ("cmd_get", "10"); ("uptime", "3 days") ];
    Protocol.Client_error "bad data chunk";
    Protocol.Server_error "out of memory";
    Protocol.Error_reply;
  ]

let test_response_roundtrip () =
  List.iter
    (fun response ->
      let rp = Protocol.Response_parser.create () in
      Protocol.Response_parser.feed rp (Protocol.encode_response response);
      match Protocol.Response_parser.next rp with
      | Some (Ok parsed) ->
          if parsed <> response then
            Alcotest.failf "response round trip changed: %s"
              (Protocol.encode_response response)
      | Some (Error e) -> Alcotest.failf "response round trip error: %s" e
      | None ->
          Alcotest.failf "response round trip incomplete: %s"
            (Protocol.encode_response response))
    responses_for_roundtrip

let test_response_incremental () =
  let rp = Protocol.Response_parser.create () in
  let encoded =
    Protocol.encode_response
      (Protocol.Values [ { vkey = "k"; vflags = 0; vdata = "abcdef"; vcas = None } ])
  in
  String.iteri
    (fun i c ->
      Protocol.Response_parser.feed rp (String.make 1 c);
      match Protocol.Response_parser.next rp with
      | Some (Ok (Protocol.Values [ v ])) ->
          if i <> String.length encoded - 1 then
            Alcotest.fail "value completed early";
          Alcotest.(check string) "data" "abcdef" v.vdata
      | Some (Ok _) | Some (Error _) ->
          if i <> String.length encoded - 1 then () else Alcotest.fail "wrong result"
      | None -> ())
    encoded

(* Property: arbitrary binary payloads survive the storage round trip. *)
let prop_binary_data_roundtrip =
  QCheck.Test.make ~name:"set data round trips any bytes" ~count:300
    QCheck.(string_of_size Gen.(int_bound 200))
    (fun data ->
      let request = Protocol.Set (storage "key" data) in
      match parse_one (Protocol.encode_request request) with
      | Some (Ok (Protocol.Set s)) -> s.data = data
      | _ -> false)

let prop_values_roundtrip =
  QCheck.Test.make ~name:"VALUE payloads round trip any bytes" ~count:300
    QCheck.(pair (string_of_size Gen.(int_bound 100)) small_nat)
    (fun (data, flags) ->
      let response =
        Protocol.Values [ { vkey = "k"; vflags = flags; vdata = data; vcas = None } ]
      in
      let rp = Protocol.Response_parser.create () in
      Protocol.Response_parser.feed rp (Protocol.encode_response response);
      match Protocol.Response_parser.next rp with
      | Some (Ok parsed) -> parsed = response
      | _ -> false)

(* --- fuzzing --- *)

(* Arbitrary bytes must never crash the parser; it must either produce
   results or wait for more input, and buffered bytes stay bounded by what
   was fed. *)
let prop_parser_never_crashes =
  QCheck.Test.make ~name:"request parser survives arbitrary bytes" ~count:500
    QCheck.(string_of_size Gen.(int_bound 300))
    (fun garbage ->
      let p = Protocol.Parser.create () in
      Protocol.Parser.feed p garbage;
      let rec drain budget =
        if budget = 0 then true
        else
          match Protocol.Parser.next p with
          | Some _ -> drain (budget - 1)
          | None -> true
      in
      drain 1000 && Protocol.Parser.buffered_bytes p <= String.length garbage)

let prop_response_parser_never_crashes =
  QCheck.Test.make ~name:"response parser survives arbitrary bytes" ~count:500
    QCheck.(string_of_size Gen.(int_bound 300))
    (fun garbage ->
      let p = Protocol.Response_parser.create () in
      Protocol.Response_parser.feed p garbage;
      let rec drain budget =
        if budget = 0 then true
        else
          match Protocol.Response_parser.next p with
          | Some _ -> drain (budget - 1)
          | None -> true
      in
      drain 1000)

(* Splitting a valid request stream at arbitrary points must not change the
   parse. *)
let prop_split_invariance =
  QCheck.Test.make ~name:"parse is split-invariant" ~count:300
    QCheck.(pair (string_of_size Gen.(int_bound 60)) (int_bound 100))
    (fun (data, split_seed) ->
      let stream =
        Protocol.encode_request (Protocol.Set (storage "k" data))
        ^ Protocol.encode_request (Protocol.Get [ "k" ])
      in
      let parse_with_splits chunk_of =
        let p = Protocol.Parser.create () in
        let results = ref [] in
        let rec feed_from i =
          if i < String.length stream then begin
            let len = min (chunk_of i) (String.length stream - i) in
            Protocol.Parser.feed p (String.sub stream i len);
            let rec drain () =
              match Protocol.Parser.next p with
              | Some r ->
                  results := r :: !results;
                  drain ()
              | None -> ()
            in
            drain ();
            feed_from (i + len)
          end
        in
        feed_from 0;
        List.rev !results
      in
      let whole = parse_with_splits (fun _ -> String.length stream) in
      let chopped = parse_with_splits (fun i -> 1 + ((i + split_seed) mod 7)) in
      whole = chopped)

let fuzz_tests =
  List.map (QCheck_alcotest.to_alcotest ~long:false)
    [
      prop_parser_never_crashes;
      prop_response_parser_never_crashes;
      prop_split_invariance;
    ]

(* --- bounded line buffering --- *)

let test_oversized_line_rejected () =
  let p = Protocol.Parser.create ~max_line:64 () in
  (* Multi-chunk garbage line far beyond the bound, then a valid command. *)
  let chunk = String.make 1024 'x' in
  for _ = 1 to 3 do
    Protocol.Parser.feed p chunk
  done;
  (match Protocol.Parser.next p with
  | Some (Error "line too long") -> ()
  | _ -> Alcotest.fail "expected line-too-long error");
  Alcotest.(check bool) "oversized bytes not retained" true
    (Protocol.Parser.buffered_bytes p <= 64);
  Alcotest.(check (option bool)) "waits for resync" None
    (Option.map Result.is_ok (Protocol.Parser.next p));
  Protocol.Parser.feed p (String.make 100 'y' ^ "\r\nget ok\r\n");
  (match Protocol.Parser.next p with
  | Some (Ok (Protocol.Get [ "ok" ])) -> ()
  | _ -> Alcotest.fail "parser did not resynchronise at the next CRLF")

let test_oversized_multi_mb_garbage () =
  let p = Protocol.Parser.create () in
  (* Several MB with no CRLF anywhere: one error, bounded memory. *)
  let mb = String.make (1024 * 1024) 'z' in
  let errors = ref 0 in
  for _ = 1 to 4 do
    Protocol.Parser.feed p mb;
    match Protocol.Parser.next p with
    | Some (Error "line too long") -> incr errors
    | Some _ -> Alcotest.fail "garbage parsed as a request"
    | None -> ()
  done;
  Alcotest.(check int) "reported exactly once" 1 !errors;
  Alcotest.(check bool) "buffer stays bounded" true
    (Protocol.Parser.buffered_bytes p < 16 * 1024);
  Protocol.Parser.feed p "\r\nversion\r\n";
  match Protocol.Parser.next p with
  | Some (Ok Protocol.Version) -> ()
  | _ -> Alcotest.fail "no recovery after multi-MB garbage"

let test_oversized_terminated_line () =
  let p = Protocol.Parser.create ~max_line:32 () in
  Protocol.Parser.feed p ("get " ^ String.make 100 'k' ^ "\r\nstats\r\n");
  (match Protocol.Parser.next p with
  | Some (Error "line too long") -> ()
  | _ -> Alcotest.fail "terminated oversized line accepted");
  match Protocol.Parser.next p with
  | Some (Ok (Protocol.Stats None)) -> ()
  | _ -> Alcotest.fail "next command lost"

let test_crlf_split_across_discard_chunks () =
  let p = Protocol.Parser.create ~max_line:16 () in
  Protocol.Parser.feed p (String.make 40 'a' ^ "\r");
  (match Protocol.Parser.next p with
  | Some (Error "line too long") -> ()
  | _ -> Alcotest.fail "expected line-too-long error");
  (* The terminator arrives split across chunks: '\r' above, '\n' now. *)
  Protocol.Parser.feed p "\nversion\r\n";
  match Protocol.Parser.next p with
  | Some (Ok Protocol.Version) -> ()
  | _ -> Alcotest.fail "CRLF split across discard boundary missed"

let test_max_line_leaves_data_blocks_alone () =
  let p = Protocol.Parser.create ~max_line:64 () in
  let data = String.make 4096 'd' in
  Protocol.Parser.feed p (Printf.sprintf "set big 0 0 %d\r\n%s\r\n" 4096 data);
  match Protocol.Parser.next p with
  | Some (Ok (Protocol.Set s)) ->
      Alcotest.(check int) "data block intact" 4096 (String.length s.Protocol.data)
  | _ -> Alcotest.fail "data block larger than max_line rejected"

let () =
  Alcotest.run "protocol"
    [
      ( "request parsing",
        [
          Alcotest.test_case "get" `Quick test_parse_get;
          Alcotest.test_case "multi get" `Quick test_parse_multi_get;
          Alcotest.test_case "gets" `Quick test_parse_gets;
          Alcotest.test_case "set" `Quick test_parse_set;
          Alcotest.test_case "set noreply" `Quick test_parse_set_noreply;
          Alcotest.test_case "cas" `Quick test_parse_cas;
          Alcotest.test_case "data with CRLF bytes" `Quick
            test_parse_data_with_crlf_bytes;
          Alcotest.test_case "delete/incr/decr/touch" `Quick
            test_parse_delete_incr_decr_touch;
          Alcotest.test_case "admin commands" `Quick test_parse_admin;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "resync after error" `Quick
            test_parser_resyncs_after_error;
          Alcotest.test_case "byte-at-a-time" `Quick test_incremental_byte_feeding;
          Alcotest.test_case "pipelining" `Quick test_pipelined_requests;
          Alcotest.test_case "key validation" `Quick test_key_validation;
          Alcotest.test_case "oversized line rejected" `Quick
            test_oversized_line_rejected;
          Alcotest.test_case "multi-MB garbage" `Quick
            test_oversized_multi_mb_garbage;
          Alcotest.test_case "oversized terminated line" `Quick
            test_oversized_terminated_line;
          Alcotest.test_case "CRLF split across discard" `Quick
            test_crlf_split_across_discard_chunks;
          Alcotest.test_case "data blocks unaffected" `Quick
            test_max_line_leaves_data_blocks_alone;
        ] );
      ( "round trips",
        [
          Alcotest.test_case "requests" `Quick test_request_roundtrip;
          Alcotest.test_case "responses" `Quick test_response_roundtrip;
          Alcotest.test_case "incremental response" `Quick test_response_incremental;
          QCheck_alcotest.to_alcotest prop_binary_data_roundtrip;
          QCheck_alcotest.to_alcotest prop_values_roundtrip;
        ] );
      ("fuzz", fuzz_tests);
    ]
