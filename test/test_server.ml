(* Server dispatch (pure) and full socket integration via the client. *)

open Memcached

let make_store () = Store.create ~backend:Store.Rp ~initial_size:64 ()

let storage ?(flags = 0) ?(exptime = 0) ?(noreply = false) key data :
    Protocol.storage =
  { key; flags; exptime; noreply; data }

let test_dispatch_set_get () =
  let store = make_store () in
  (match Server.handle store (Protocol.Set (storage "k" "v")) with
  | Some Protocol.Stored -> ()
  | _ -> Alcotest.fail "set not stored");
  match Server.handle store (Protocol.Get [ "k"; "ghost" ]) with
  | Some (Protocol.Values [ v ]) ->
      Alcotest.(check string) "value" "v" v.vdata;
      Alcotest.(check string) "key echoed" "k" v.vkey
  | _ -> Alcotest.fail "get wrong"

let test_dispatch_noreply () =
  let store = make_store () in
  Alcotest.(check bool) "noreply set suppressed" true
    (Server.handle store (Protocol.Set (storage ~noreply:true "k" "v")) = None);
  Alcotest.(check bool) "stored anyway" true (Store.get store "k" <> None);
  Alcotest.(check bool) "noreply delete suppressed" true
    (Server.handle store (Protocol.Delete { key = "k"; noreply = true }) = None)

let test_dispatch_delete () =
  let store = make_store () in
  ignore (Server.handle store (Protocol.Set (storage "k" "v")));
  (match Server.handle store (Protocol.Delete { key = "k"; noreply = false }) with
  | Some Protocol.Deleted -> ()
  | _ -> Alcotest.fail "delete should report Deleted");
  match Server.handle store (Protocol.Delete { key = "k"; noreply = false }) with
  | Some Protocol.Not_found -> ()
  | _ -> Alcotest.fail "second delete should report Not_found"

let test_dispatch_counters () =
  let store = make_store () in
  ignore (Server.handle store (Protocol.Set (storage "c" "5")));
  (match Server.handle store (Protocol.Incr { key = "c"; delta = 2; noreply = false }) with
  | Some (Protocol.Number 7) -> ()
  | _ -> Alcotest.fail "incr wrong");
  (match Server.handle store (Protocol.Incr { key = "ghost"; delta = 1; noreply = false }) with
  | Some Protocol.Not_found -> ()
  | _ -> Alcotest.fail "incr on absent wrong");
  ignore (Server.handle store (Protocol.Set (storage "s" "text")));
  match Server.handle store (Protocol.Incr { key = "s"; delta = 1; noreply = false }) with
  | Some (Protocol.Client_error _) -> ()
  | _ -> Alcotest.fail "incr on non-numeric should be CLIENT_ERROR"

let test_dispatch_gets_cas_flow () =
  let store = make_store () in
  ignore (Server.handle store (Protocol.Set (storage "k" "v1")));
  let unique =
    match Server.handle store (Protocol.Gets [ "k" ]) with
    | Some (Protocol.Values [ { vcas = Some c; _ } ]) -> c
    | _ -> Alcotest.fail "gets lost cas"
  in
  (match Server.handle store (Protocol.Cas (storage "k" "v2", unique)) with
  | Some Protocol.Stored -> ()
  | _ -> Alcotest.fail "cas with fresh unique failed");
  match Server.handle store (Protocol.Cas (storage "k" "v3", unique)) with
  | Some Protocol.Exists -> ()
  | _ -> Alcotest.fail "stale cas accepted"

let test_dispatch_admin () =
  let store = make_store () in
  (match Server.handle store Protocol.Version with
  | Some (Protocol.Version_reply v) ->
      Alcotest.(check string) "version string" Server.version_string v
  | _ -> Alcotest.fail "version wrong");
  (match Server.handle store (Protocol.Stats None) with
  | Some (Protocol.Stats_reply kvs) ->
      Alcotest.(check bool) "stats non-empty" true (List.length kvs > 0)
  | _ -> Alcotest.fail "stats wrong");
  ignore (Server.handle store (Protocol.Set (storage "k" "v")));
  (match Server.handle store (Protocol.Flush_all { noreply = false }) with
  | Some Protocol.Ok_reply -> ()
  | _ -> Alcotest.fail "flush_all wrong");
  Alcotest.(check int) "flushed" 0 (Store.items store);
  Alcotest.(check bool) "quit closes" true (Server.handle store Protocol.Quit = None)

(* --- socket integration ---

   Every socket test runs against both serving planes: the threaded
   fallback (memb-flavoured store) and the sharded event loop (QSBR
   store, the paper configuration). A "plane" bundles the server config
   with the store's RCU mode. *)

let threaded_plane = ("threaded", Server.default_config, Store.Memb)

let ev_plane =
  ( "event-loop",
    { Server.default_config with Server.mode = Server.Event_loop; workers = 2 },
    Store.Qsbr )

let with_server ?(config = Server.default_config) ?(rcu_mode = Store.Memb) f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rp-mc-test-%d.sock" (Unix.getpid ()))
  in
  let store = Store.create ~backend:Store.Rp ~rcu_mode ~initial_size:64 () in
  let server = Server.start ~store ~config (Server.Unix_socket path) in
  let finish () = Server.stop server in
  (match f ~server (Server.Unix_socket path) store with
  | () -> finish ()
  | exception e ->
      finish ();
      raise e)

let with_plane (_, config, rcu_mode) f = with_server ~config ~rcu_mode f

let test_socket_roundtrip plane () =
  with_plane plane (fun ~server:_ addr _store ->
      let client = Client.connect addr in
      Alcotest.(check bool) "set" true (Client.set client ~key:"k" ~data:"hello" ());
      (match Client.get client "k" with
      | Some v -> Alcotest.(check string) "get" "hello" v.vdata
      | None -> Alcotest.fail "get missed");
      Alcotest.(check (option string)) "miss" None
        (Option.map (fun (v : Protocol.value) -> v.vdata) (Client.get client "ghost"));
      Alcotest.(check bool) "delete" true (Client.delete client "k");
      Alcotest.(check bool) "delete again" false (Client.delete client "k");
      Client.close client)

let test_socket_counters_and_touch plane () =
  with_plane plane (fun ~server:_ addr _store ->
      let client = Client.connect addr in
      ignore (Client.set client ~key:"c" ~data:"41" ());
      Alcotest.(check (option int)) "incr" (Some 42) (Client.incr client "c" 1);
      Alcotest.(check (option int)) "decr" (Some 40) (Client.decr client "c" 2);
      Alcotest.(check (option int)) "incr absent" None (Client.incr client "ghost" 1);
      Alcotest.(check bool) "touch" true (Client.touch client ~key:"c" ~exptime:100);
      Client.close client)

let test_socket_large_value plane () =
  with_plane plane (fun ~server:_ addr _store ->
      let client = Client.connect addr in
      (* Larger than the server's 16 KiB read buffer: exercises incremental
         parsing across multiple reads. *)
      let big = String.init 100_000 (fun i -> Char.chr (33 + (i mod 90))) in
      Alcotest.(check bool) "set big" true (Client.set client ~key:"big" ~data:big ());
      (match Client.get client "big" with
      | Some v -> Alcotest.(check int) "big length" 100_000 (String.length v.vdata)
      | None -> Alcotest.fail "big value lost");
      (match Client.get client "big" with
      | Some v -> Alcotest.(check bool) "big content intact" true (v.vdata = big)
      | None -> Alcotest.fail "big value lost on re-read");
      Client.close client)

let test_socket_multi_clients plane () =
  with_plane plane (fun ~server:_ addr _store ->
      let clients = List.init 4 (fun _ -> Client.connect addr) in
      List.iteri
        (fun i c ->
          Alcotest.(check bool) "set" true
            (Client.set c ~key:(Printf.sprintf "k%d" i) ~data:(string_of_int i) ()))
        clients;
      (* Every client sees every other client's writes. *)
      List.iter
        (fun c ->
          for i = 0 to 3 do
            match Client.get c (Printf.sprintf "k%d" i) with
            | Some v -> Alcotest.(check string) "cross visibility" (string_of_int i) v.vdata
            | None -> Alcotest.fail "cross-client value missing"
          done)
        clients;
      List.iter Client.close clients)

let test_socket_multi_get plane () =
  with_plane plane (fun ~server:_ addr _store ->
      let client = Client.connect addr in
      ignore (Client.set client ~key:"a" ~data:"1" ());
      ignore (Client.set client ~key:"b" ~data:"2" ());
      let values = Client.get_many client [ "a"; "ghost"; "b" ] in
      Alcotest.(check (list string)) "present values" [ "1"; "2" ]
        (List.map (fun (v : Protocol.value) -> v.vdata) values);
      Client.close client)

let test_socket_stats_and_version plane () =
  with_plane plane (fun ~server:_ addr _store ->
      let client = Client.connect addr in
      Alcotest.(check string) "version" Server.version_string (Client.version client);
      let stats = Client.stats client in
      Alcotest.(check bool) "stats has backend" true
        (List.mem_assoc "backend" stats);
      Client.flush_all client;
      Client.close client)

let test_socket_protocol_error_keeps_connection plane () =
  with_plane plane (fun ~server:_ addr _store ->
      (* Send garbage, then a valid request on the same connection. *)
      let client = Client.connect addr in
      (match Client.request client (Protocol.Get [ "placeholder" ]) with
      | Protocol.Values [] -> ()
      | _ -> Alcotest.fail "warmup failed");
      Client.close client;
      (* Raw socket: garbage line then valid get. *)
      let path = match addr with Server.Unix_socket p -> p | _ -> assert false in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      let send s = ignore (Unix.write fd (Bytes.of_string s) 0 (String.length s)) in
      send "not a command\r\nversion\r\n";
      let buf = Bytes.create 4096 in
      let rec read_all acc =
        if
          (* Stop once we have both the error reply and the version. *)
          let s = acc in
          String.length s > 0
          && String.split_on_char '\n' s |> List.length >= 3
        then acc
        else begin
          let n = Unix.read fd buf 0 4096 in
          if n = 0 then acc else read_all (acc ^ Bytes.sub_string buf 0 n)
        end
      in
      let reply = read_all "" in
      Unix.close fd;
      Alcotest.(check bool) "error reported" true
        (String.length reply >= 5 && String.sub reply 0 5 = "ERROR");
      Alcotest.(check bool) "connection survived to serve version" true
        (let needle = "VERSION" in
         let rec find i =
           i + String.length needle <= String.length reply
           && (String.sub reply i (String.length needle) = needle || find (i + 1))
         in
         find 0))

(* --- hardening: connection cap, timeouts, fault tolerance, drain --- *)

let test_max_connections_cap (_, config, rcu_mode) () =
  let config = { config with Server.max_connections = 1 } in
  with_server ~config ~rcu_mode (fun ~server addr _store ->
      let c1 = Client.connect addr in
      Alcotest.(check bool) "first client served" true
        (Client.set c1 ~key:"k" ~data:"v" ());
      (* Second connection must be turned away with SERVER_ERROR. *)
      let path = match addr with Server.Unix_socket p -> p | _ -> assert false in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      let buf = Bytes.create 4096 in
      let rec read_all acc =
        match Unix.read fd buf 0 4096 with
        | 0 -> acc
        | n -> read_all (acc ^ Bytes.sub_string buf 0 n)
        | exception Unix.Unix_error _ -> acc
      in
      let reply = read_all "" in
      Unix.close fd;
      Alcotest.(check bool) "rejected with SERVER_ERROR" true
        (String.length reply >= 12 && String.sub reply 0 12 = "SERVER_ERROR");
      Alcotest.(check bool) "rejection counted" true
        (Server.rejected_connections server >= 1);
      (* The first connection is unaffected by the rejection. *)
      (match Client.get c1 "k" with
      | Some v -> Alcotest.(check string) "still served" "v" v.vdata
      | None -> Alcotest.fail "existing connection broken by rejection");
      Client.close c1)

let test_idle_timeout_closes_connection (_, config, rcu_mode) () =
  let config = { config with Server.idle_timeout = 0.05 } in
  with_server ~config ~rcu_mode (fun ~server:_ addr _store ->
      let c = Client.connect addr in
      Alcotest.(check bool) "first op" true (Client.set c ~key:"k" ~data:"v" ());
      Unix.sleepf 0.2;
      (* The server timed the connection out while we slept. *)
      Alcotest.(check bool) "idle connection dropped" true
        (match Client.get c "k" with
        | _ -> false
        | exception (Client.Disconnected _ | Unix.Unix_error _) -> true);
      Client.close c;
      (* A retrying client rides the drop transparently. *)
      let c2 = Client.connect ~retries:2 addr in
      ignore (Client.set c2 ~key:"k2" ~data:"w" ());
      Unix.sleepf 0.2;
      (match Client.get c2 "k2" with
      | Some v -> Alcotest.(check string) "reconnect and retry" "w" v.vdata
      | None -> Alcotest.fail "value lost across reconnect");
      Client.close c2)

let test_torn_writes_still_correct plane () =
  with_plane plane (fun ~server:_ addr _store ->
      let c = Client.connect addr in
      let big = String.init 20_000 (fun i -> Char.chr (33 + (i mod 90))) in
      Alcotest.(check bool) "set big" true (Client.set c ~key:"big" ~data:big ());
      Rp_fault.arm "server.write.partial" ~trigger:Rp_fault.Always
        ~action:(Rp_fault.Truncate_io 3);
      Fun.protect
        ~finally:(fun () -> Rp_fault.disarm "server.write.partial")
        (fun () ->
          match Client.get c "big" with
          | Some v ->
              Alcotest.(check bool) "payload intact over 3-byte writes" true
                (v.vdata = big)
          | None -> Alcotest.fail "value lost under torn writes");
      Alcotest.(check bool) "writes were actually torn" true
        (Rp_fault.fires "server.write.partial" > 100);
      Client.close c)

let test_conn_reset_with_client_retry plane () =
  with_plane plane (fun ~server:_ addr _store ->
      let c = Client.connect ~retries:4 addr in
      Alcotest.(check bool) "seed" true (Client.set c ~key:"k" ~data:"v" ());
      Rp_fault.arm "server.conn.reset" ~trigger:Rp_fault.One_shot
        ~action:Rp_fault.Raise;
      Fun.protect
        ~finally:(fun () -> Rp_fault.disarm "server.conn.reset")
        (fun () ->
          (* The one-shot reset tears the connection at the server's next
             read; the retrying client reconnects and completes both ops. *)
          ignore (Client.set c ~key:"k2" ~data:"w" ());
          (match Client.get c "k" with
          | Some v -> Alcotest.(check string) "survived the reset" "v" v.vdata
          | None -> Alcotest.fail "value lost across injected reset");
          Alcotest.(check int) "reset fired" 1 (Rp_fault.fires "server.conn.reset"));
      Client.close c)

let test_stop_drains_connections (_, config, rcu_mode) () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rp-mc-drain-%d.sock" (Unix.getpid ()))
  in
  let store = Store.create ~backend:Store.Rp ~rcu_mode ~initial_size:64 () in
  let server = Server.start ~store ~config (Server.Unix_socket path) in
  let clients =
    List.init 3 (fun _ -> Client.connect (Server.Unix_socket path))
  in
  List.iteri
    (fun i c ->
      ignore (Client.set c ~key:(Printf.sprintf "k%d" i) ~data:"v" ()))
    clients;
  Alcotest.(check bool) "connections live" true
    (Server.active_connections server >= 1);
  (* stop must shut down and join every connection thread. *)
  Server.stop server;
  Alcotest.(check int) "all connections drained" 0
    (Server.active_connections server);
  List.iter (fun c -> try Client.close c with _ -> ()) clients

(* --- pipelining: many requests per segment, segments splitting requests --- *)

let connect_raw addr =
  let path =
    match addr with Server.Unix_socket p -> p | _ -> assert false
  in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

let send_all fd s =
  let b = Bytes.of_string s in
  let off = ref 0 in
  while !off < Bytes.length b do
    off := !off + Unix.write fd b !off (Bytes.length b - !off)
  done

let recv_exactly fd len =
  let buf = Bytes.create len in
  let off = ref 0 in
  while !off < len do
    let n = Unix.read fd buf !off (len - !off) in
    if n = 0 then failwith "server closed early";
    off := !off + n
  done;
  Bytes.to_string buf

let enc = Protocol.encode_response

let value key data : Protocol.value =
  { vkey = key; vflags = 0; vdata = data; vcas = None }

(* Six commands; responses must come back complete, in order, on the
   right connection — regardless of how the request bytes were framed. *)
let pipeline_request =
  String.concat ""
    [
      "set a 0 0 1\r\n1\r\n";
      "set b 0 0 1\r\n2\r\n";
      "get a\r\n";
      "get b\r\n";
      "get a b\r\n";
      "incr ghost 1\r\n";
    ]

let pipeline_expected =
  String.concat ""
    [
      enc Protocol.Stored;
      enc Protocol.Stored;
      enc (Protocol.Values [ value "a" "1" ]);
      enc (Protocol.Values [ value "b" "2" ]);
      enc (Protocol.Values [ value "a" "1"; value "b" "2" ]);
      enc Protocol.Not_found;
    ]

let test_pipelined_single_segment plane () =
  with_plane plane (fun ~server:_ addr _store ->
      let fd = connect_raw addr in
      (* Everything in one write: the server must drain all six requests
         from one wakeup and answer each. *)
      send_all fd pipeline_request;
      let got = recv_exactly fd (String.length pipeline_expected) in
      Unix.close fd;
      Alcotest.(check string) "batched responses in order" pipeline_expected got)

let test_pipelined_split_segments plane () =
  with_plane plane (fun ~server:_ addr _store ->
      let fd = connect_raw addr in
      (* Same stream, dribbled 4 bytes at a time: every command and data
         block straddles segment boundaries. *)
      let len = String.length pipeline_request in
      let off = ref 0 in
      while !off < len do
        let n = min 4 (len - !off) in
        send_all fd (String.sub pipeline_request !off n);
        off := !off + n;
        Unix.sleepf 0.001
      done;
      let got = recv_exactly fd (String.length pipeline_expected) in
      Unix.close fd;
      Alcotest.(check string) "split stream same responses" pipeline_expected
        got)

let test_binary_frame_straddles_reads plane () =
  with_plane plane (fun ~server:_ addr _store ->
      let fd = connect_raw addr in
      let set_req =
        Binary_protocol.encode_request
          {
            opcode = Binary_protocol.Set;
            key = "bk";
            value = "bv";
            extras = Binary_protocol.set_extras ~flags:0 ~exptime:0;
            opaque = 1;
            cas = 0;
          }
      in
      let get_req =
        Binary_protocol.encode_request
          {
            opcode = Binary_protocol.Get;
            key = "bk";
            value = "";
            extras = "";
            opaque = 2;
            cas = 0;
          }
      in
      let stream = set_req ^ get_req in
      (* First write ends inside the SET frame's 24-byte header. *)
      send_all fd (String.sub stream 0 10);
      Unix.sleepf 0.02;
      send_all fd (String.sub stream 10 (String.length stream - 10));
      let rp = Binary_protocol.Response_parser.create () in
      let buf = Bytes.create 4096 in
      let responses = ref [] in
      while List.length !responses < 2 do
        match Binary_protocol.Response_parser.next rp with
        | Some (Ok r) -> responses := r :: !responses
        | Some (Error msg) ->
            Alcotest.fail ("binary response parse error: " ^ msg)
        | None ->
            let n = Unix.read fd buf 0 4096 in
            if n = 0 then Alcotest.fail "server closed mid-binary";
            Binary_protocol.Response_parser.feed rp (Bytes.sub_string buf 0 n)
      done;
      Unix.close fd;
      match List.rev !responses with
      | [ (set_r : Binary_protocol.response); get_r ] ->
          Alcotest.(check int) "set status ok" 0
            (Binary_protocol.status_to_int set_r.status);
          Alcotest.(check int) "get status ok" 0
            (Binary_protocol.status_to_int get_r.status);
          Alcotest.(check string) "get value" "bv" get_r.r_value;
          Alcotest.(check int) "opaque echoed" 2 get_r.r_opaque
      | _ -> assert false)

(* Sharded routing: several connections fire pipelined bursts for their
   own key before any response is read; each must get back exactly its
   own values, in order — nothing crossed between workers. *)
let test_multiworker_routing () =
  let config =
    { Server.default_config with Server.mode = Server.Event_loop; workers = 4 }
  in
  with_server ~config ~rcu_mode:Store.Qsbr (fun ~server addr _store ->
      Alcotest.(check int) "worker domains" 4 (Server.workers server);
      let n = 8 and reps = 25 in
      let fds = Array.init n (fun _ -> connect_raw addr) in
      Array.iteri
        (fun i fd ->
          let data = Printf.sprintf "val%d" i in
          send_all fd
            (Printf.sprintf "set rk%d 0 0 %d\r\n%s\r\n" i
               (String.length data) data);
          let expect = enc Protocol.Stored in
          Alcotest.(check string) "seed stored" expect
            (recv_exactly fd (String.length expect)))
        fds;
      Array.iteri
        (fun i fd ->
          send_all fd
            (String.concat ""
               (List.init reps (fun _ -> Printf.sprintf "get rk%d\r\n" i))))
        fds;
      Array.iteri
        (fun i fd ->
          let one =
            enc
              (Protocol.Values
                 [
                   value (Printf.sprintf "rk%d" i) (Printf.sprintf "val%d" i);
                 ])
          in
          let expected = String.concat "" (List.init reps (fun _ -> one)) in
          let got = recv_exactly fd (String.length expected) in
          Alcotest.(check bool)
            (Printf.sprintf "connection %d got only its own values" i)
            true (got = expected))
        fds;
      Array.iter Unix.close fds)

let socket_cases plane =
  let tc name f = Alcotest.test_case name `Quick (f plane) in
  [
    tc "round trip" test_socket_roundtrip;
    tc "counters and touch" test_socket_counters_and_touch;
    tc "large value" test_socket_large_value;
    tc "multiple clients" test_socket_multi_clients;
    tc "multi get" test_socket_multi_get;
    tc "stats and version" test_socket_stats_and_version;
    tc "protocol error keeps connection" test_socket_protocol_error_keeps_connection;
    tc "pipelined single segment" test_pipelined_single_segment;
    tc "pipelined split segments" test_pipelined_split_segments;
    tc "binary frame straddles reads" test_binary_frame_straddles_reads;
  ]

let hardening_cases plane =
  let tc name f = Alcotest.test_case name `Quick (f plane) in
  [
    tc "max connections cap" test_max_connections_cap;
    tc "idle timeout" test_idle_timeout_closes_connection;
    tc "torn writes" test_torn_writes_still_correct;
    tc "conn reset + retry" test_conn_reset_with_client_retry;
    tc "stop drains" test_stop_drains_connections;
  ]

let () =
  Alcotest.run "server"
    [
      ( "dispatch",
        [
          Alcotest.test_case "set/get" `Quick test_dispatch_set_get;
          Alcotest.test_case "noreply" `Quick test_dispatch_noreply;
          Alcotest.test_case "delete" `Quick test_dispatch_delete;
          Alcotest.test_case "counters" `Quick test_dispatch_counters;
          Alcotest.test_case "gets/cas flow" `Quick test_dispatch_gets_cas_flow;
          Alcotest.test_case "admin" `Quick test_dispatch_admin;
        ] );
      ("socket integration (threaded)", socket_cases threaded_plane);
      ("socket integration (event loop)", socket_cases ev_plane);
      ("hardening (threaded)", hardening_cases threaded_plane);
      ("hardening (event loop)", hardening_cases ev_plane);
      ( "event-loop sharding",
        [
          Alcotest.test_case "multi-worker response routing" `Quick
            test_multiworker_routing;
        ] );
    ]
