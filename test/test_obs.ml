(* Observability plane: striped counters, histograms, trace ring, registry
   rendering, server stats round-trip, and the read-path overhead guard. *)

open Rp_obs

(* --- striped counters --- *)

let test_counter_domains () =
  let c = Counter.create () in
  let per_domain = 50_000 in
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Counter.incr c
            done))
  in
  Array.iter Domain.join domains;
  (* Writers have quiesced (joined), so the striped sum is exact. *)
  Alcotest.(check int) "exact sum" (4 * per_domain) (Counter.read c);
  Counter.add c 42;
  Alcotest.(check int) "add" ((4 * per_domain) + 42) (Counter.read c);
  Counter.reset c;
  Alcotest.(check int) "reset" 0 (Counter.read c)

let test_counter_disabled () =
  let c = Counter.create () in
  set_enabled false;
  Fun.protect
    ~finally:(fun () -> set_enabled true)
    (fun () -> Counter.incr c);
  Alcotest.(check int) "disabled increments dropped" 0 (Counter.read c)

(* --- histograms --- *)

let test_histogram_percentiles () =
  let h = Histogram.create () in
  (* 100 observations of 100 ... then one huge outlier. *)
  for _ = 1 to 100 do
    Histogram.observe h 100
  done;
  Histogram.observe h 1_000_000;
  let s = Histogram.snapshot h in
  Alcotest.(check int) "count" 101 s.Histogram.count;
  Alcotest.(check int) "sum" ((100 * 100) + 1_000_000) s.Histogram.sum;
  Alcotest.(check int) "max" 1_000_000 s.Histogram.max;
  (* Power-of-two buckets: a percentile is the upper bound of its bucket,
     so it is >= the true value and < 2x the true value. *)
  let p50 = Histogram.percentile s 0.5 in
  Alcotest.(check bool) "p50 lower bound" true (p50 >= 100);
  Alcotest.(check bool) "p50 upper bound" true (p50 < 200);
  let p99 = Histogram.percentile s 0.99 in
  Alcotest.(check bool) "p99 in the common bucket" true (p99 >= 100 && p99 < 200);
  let p100 = Histogram.percentile s 1.0 in
  Alcotest.(check bool) "p100 covers the outlier" true
    (p100 >= 1_000_000 && p100 < 2_000_000);
  Alcotest.(check int) "empty percentile" 0
    (Histogram.percentile (Histogram.snapshot (Histogram.create ())) 0.5)

let test_histogram_buckets () =
  Alcotest.(check int) "zero" 0 (Histogram.bucket_of_value 0);
  Alcotest.(check int) "negative clamps" 0 (Histogram.bucket_of_value (-5));
  Alcotest.(check int) "one" 1 (Histogram.bucket_of_value 1);
  Alcotest.(check int) "two" 2 (Histogram.bucket_of_value 2);
  Alcotest.(check int) "three" 2 (Histogram.bucket_of_value 3);
  (* 63-bit ints: max_int = 2^62 - 1 lands in bucket 62, whose inclusive
     upper bound is exactly max_int. *)
  Alcotest.(check int) "max_int bucket" 62 (Histogram.bucket_of_value max_int);
  Alcotest.(check int) "max_int covered" max_int
    (Histogram.upper_bound (Histogram.bucket_of_value max_int));
  (* Every value sits at or below its bucket's inclusive upper bound. *)
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "upper bound covers %d" v)
        true
        (Histogram.upper_bound (Histogram.bucket_of_value v) >= v))
    [ 0; 1; 7; 8; 1023; 1024; 123_456_789 ]

let test_histogram_domains () =
  let h = Histogram.create () in
  let per_domain = 10_000 in
  let domains =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Histogram.observe h (10 * (d + 1))
            done))
  in
  Array.iter Domain.join domains;
  let s = Histogram.snapshot h in
  Alcotest.(check int) "merged count" (4 * per_domain) s.Histogram.count;
  Alcotest.(check int) "merged sum"
    (per_domain * (10 + 20 + 30 + 40))
    s.Histogram.sum

(* --- trace ring --- *)

let test_trace_wraparound () =
  let ring = Trace.create ~capacity:16 () in
  for i = 0 to 39 do
    Trace.emit ring ~arg:(i * 7) "test.event"
  done;
  Alcotest.(check int) "emitted" 40 (Trace.emitted ring);
  Alcotest.(check int) "capacity rounded" 16 (Trace.capacity ring);
  let events = Trace.snapshot ring in
  Alcotest.(check int) "ring keeps newest capacity" 16 (List.length events);
  (* Coherent snapshot: each surviving event is the newest for its slot,
     in ascending seq order, with its own (seq-derived) payload — no torn
     or stale records. *)
  List.iteri
    (fun i e ->
      Alcotest.(check int) "seq" (24 + i) e.Trace.seq;
      Alcotest.(check int) "payload matches seq" ((24 + i) * 7) e.Trace.arg;
      Alcotest.(check string) "kind" "test.event" e.Trace.kind)
    events;
  Trace.clear ring;
  Alcotest.(check int) "cleared" 0 (List.length (Trace.snapshot ring));
  Trace.emit ring "test.after";
  (match Trace.snapshot ring with
  | [ e ] -> Alcotest.(check int) "seq continues after clear" 40 e.Trace.seq
  | _ -> Alcotest.fail "expected exactly one event after clear")

let test_trace_concurrent () =
  let ring = Trace.create ~capacity:256 () in
  let per_domain = 64 in
  let domains =
    Array.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Trace.emit ring ~arg:i (Printf.sprintf "d%d" d)
            done))
  in
  Array.iter Domain.join domains;
  let events = Trace.snapshot ring in
  Alcotest.(check int) "all events fit" (4 * per_domain) (List.length events);
  (* seqs strictly ascending, i.e. no slot collisions below capacity *)
  let rec ascending = function
    | a :: (b :: _ as rest) -> a.Trace.seq < b.Trace.seq && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "ascending seq" true (ascending events)

(* --- registry rendering --- *)

let test_registry_stats_and_json () =
  let reg = Registry.create () in
  let c = Registry.counter reg ~help:"test counter" "widgets_total" in
  Counter.add c 7;
  Registry.gauge reg ~help:"test gauge" "level" (fun () -> 2.5);
  let h = Registry.histogram reg ~help:"test histogram" "latency_ns" in
  Histogram.observe h 1000;
  Alcotest.(check bool) "get-or-create shares" true
    (Registry.counter reg "widgets_total" == c);
  let stats = Registry.to_stats reg in
  Alcotest.(check string) "counter line" "7" (List.assoc "widgets_total" stats);
  Alcotest.(check string) "gauge line" "2.5" (List.assoc "level" stats);
  Alcotest.(check string) "histogram count line" "1"
    (List.assoc "latency_ns_count" stats);
  Alcotest.(check bool) "histogram p99 present" true
    (List.mem_assoc "latency_ns_p99" stats);
  Alcotest.(check (option (float 1e-9))) "value api" (Some 7.)
    (Registry.value reg "widgets_total");
  let json = Registry.to_json reg in
  Alcotest.(check bool) "json object" true
    (String.length json > 2 && json.[0] = '{' && json.[String.length json - 1] = '}');
  Alcotest.(check bool) "json has counter" true
    (let sub = "\"widgets_total\":7" in
     let rec find i =
       i + String.length sub <= String.length json
       && (String.sub json i (String.length sub) = sub || find (i + 1))
     in
     find 0);
  Alcotest.check_raises "invalid name rejected"
    (Invalid_argument "Rp_obs.Registry: invalid metric name bad name") (fun () ->
      ignore (Registry.counter reg "bad name"))

(* Prometheus text format 0.0.4: every line is a comment ("# HELP"/"# TYPE")
   or a sample: metric_name[{le="…"}] SP value. *)
let sample_line_ok line =
  let name_char = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
    | _ -> false
  in
  let len = String.length line in
  let i = ref 0 in
  while !i < len && name_char line.[!i] do
    incr i
  done;
  !i > 0
  && (not (match line.[0] with '0' .. '9' -> true | _ -> false))
  &&
  (* optional {le="..."} label set *)
  let i =
    if !i < len && line.[!i] = '{' then
      match String.index_from_opt line !i '}' with
      | Some close -> close + 1
      | None -> len + 1 (* unterminated: fail below *)
    else !i
  in
  i < len
  && line.[i] = ' '
  && float_of_string_opt (String.sub line (i + 1) (len - i - 1)) <> None

let test_prometheus_format () =
  let reg = Registry.create () in
  let c = Registry.counter reg ~help:"requests served" "requests_total" in
  Counter.add c 3;
  Registry.gauge reg ~help:"live items" "items" (fun () -> 12.0);
  let h = Registry.histogram reg ~help:"latency" "latency_ns" in
  List.iter (Histogram.observe h) [ 3; 100; 40_000 ];
  let text = Registry.to_prometheus reg in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
  in
  Alcotest.(check bool) "non-empty" true (List.length lines > 5);
  List.iter
    (fun line ->
      let comment =
        String.length line >= 7
        && (String.sub line 0 7 = "# HELP " || String.sub line 0 7 = "# TYPE ")
      in
      if not (comment || sample_line_ok line) then
        Alcotest.failf "bad exposition line: %S" line)
    lines;
  let has sub =
    let rec find i =
      i + String.length sub <= String.length text
      && (String.sub text i (String.length sub) = sub || find (i + 1))
    in
    find 0
  in
  Alcotest.(check bool) "TYPE counter" true (has "# TYPE requests_total counter");
  Alcotest.(check bool) "TYPE histogram" true (has "# TYPE latency_ns histogram");
  Alcotest.(check bool) "cumulative buckets" true (has "latency_ns_bucket{le=");
  Alcotest.(check bool) "+Inf bucket" true
    (has "latency_ns_bucket{le=\"+Inf\"} 3");
  Alcotest.(check bool) "histogram count" true (has "latency_ns_count 3")

(* --- stats round-trip through the server and client --- *)

let with_server f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rp-obs-test-%d.sock" (Unix.getpid ()))
  in
  let store = Memcached.Store.create ~backend:Memcached.Store.Rp () in
  let server = Memcached.Server.start ~store (Memcached.Server.Unix_socket path) in
  Fun.protect
    ~finally:(fun () -> Memcached.Server.stop server)
    (fun () -> f store (Memcached.Server.Unix_socket path))

let test_stats_roundtrip () =
  with_server (fun _store addr ->
      let client = Memcached.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Memcached.Client.close client)
        (fun () ->
          Alcotest.(check bool) "set" true
            (Memcached.Client.set client ~key:"k" ~data:"v" ());
          Alcotest.(check bool) "hit" true
            (Memcached.Client.get client "k" <> None);
          Alcotest.(check bool) "miss" true
            (Memcached.Client.get client "absent" = None);
          let stats = Memcached.Client.stats client in
          Alcotest.(check string) "backend" "rp" (List.assoc "backend" stats);
          Alcotest.(check string) "get_hits" "1" (List.assoc "get_hits" stats);
          Alcotest.(check string) "get_misses" "1" (List.assoc "get_misses" stats);
          Alcotest.(check string) "cmd_set" "1" (List.assoc "cmd_set" stats);
          Alcotest.(check string) "curr_items" "1" (List.assoc "curr_items" stats);
          Alcotest.(check bool) "accepted connection counted" true
            (int_of_string (List.assoc "server_connections_accepted_total" stats)
            >= 1);
          let rp = Memcached.Client.stats ~arg:"rp" client in
          Alcotest.(check bool) "rp stats carry table lookups" true
            (int_of_string (List.assoc "rp_ht_lookups_total" rp) >= 2);
          Alcotest.(check bool) "rp stats carry rcu counters" true
            (List.mem_assoc "rcu_grace_periods_total" rp);
          (* Write-side sharding instruments: the SET above took a stripe. *)
          Alcotest.(check bool) "stripe acquisitions counted" true
            (int_of_string (List.assoc "rp_ht_stripe_acquisitions_total" rp)
            >= 1);
          Alcotest.(check bool) "stripe count exported" true
            (int_of_string (List.assoc "rp_ht_stripes" rp) >= 2);
          Alcotest.(check bool) "contention counter exported" true
            (List.mem_assoc "rp_ht_stripe_contended_total" rp);
          Alcotest.(check bool) "lazy-split counter exported" true
            (List.mem_assoc "rp_ht_lazy_splits_total" rp);
          Alcotest.(check bool) "rp stats exclude store counters" false
            (List.mem_assoc "cmd_get" rp)))

let test_metrics_http () =
  with_server (fun store _addr ->
      ignore (Memcached.Store.set store ~key:"k" ~flags:0 ~exptime:0 ~data:"v");
      let endpoint =
        Memcached.Metrics_http.start ~registry:(Memcached.Store.registry store)
          ~heat:(fun n -> Memcached.Store.heat_json ?n store)
          0
      in
      Fun.protect
        ~finally:(fun () -> Memcached.Metrics_http.stop endpoint)
        (fun () ->
          let fetch path =
            let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            Unix.connect fd
              (Unix.ADDR_INET
                 (Unix.inet_addr_loopback, Memcached.Metrics_http.port endpoint));
            let out = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
            ignore (Unix.write_substring fd out 0 (String.length out));
            let buf = Buffer.create 4096 in
            let chunk = Bytes.create 4096 in
            let rec drain () =
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 -> ()
              | n ->
                  Buffer.add_subbytes buf chunk 0 n;
                  drain ()
              | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
            in
            drain ();
            Unix.close fd;
            Buffer.contents buf
          in
          let has body sub =
            let rec find i =
              i + String.length sub <= String.length body
              && (String.sub body i (String.length sub) = sub || find (i + 1))
            in
            find 0
          in
          let metrics = fetch "/metrics" in
          Alcotest.(check bool) "/metrics is 200" true
            (has metrics "HTTP/1.0 200 OK");
          Alcotest.(check bool) "/metrics exposition content type" true
            (has metrics "text/plain; version=0.0.4");
          Alcotest.(check bool) "store counter exposed" true
            (has metrics "# TYPE cmd_set counter");
          Alcotest.(check bool) "table histogram exposed" true
            (has metrics "# TYPE rp_ht_resize_ns histogram");
          (* Each endpoint routes to its own representation and
             Content-Type; anything else is a 404, not a default page. *)
          let root = fetch "/" in
          Alcotest.(check bool) "/ aliases /metrics" true
            (has root "text/plain; version=0.0.4");
          let json = fetch "/json" in
          Alcotest.(check bool) "/json is 200" true (has json "HTTP/1.0 200 OK");
          Alcotest.(check bool) "/json content type" true
            (has json "Content-Type: application/json");
          Alcotest.(check bool) "/json carries the registry" true
            (has json "\"cmd_set\"");
          let trace = fetch "/trace" in
          Alcotest.(check bool) "/trace is 200" true
            (has trace "HTTP/1.0 200 OK");
          Alcotest.(check bool) "/trace content type" true
            (has trace "Content-Type: application/json");
          Alcotest.(check bool) "/trace is a perfetto document" true
            (has trace "\"traceEvents\"");
          let heat = fetch "/heat" in
          Alcotest.(check bool) "/heat is 200" true (has heat "HTTP/1.0 200 OK");
          Alcotest.(check bool) "/heat content type" true
            (has heat "Content-Type: application/json");
          Alcotest.(check bool) "/heat is the insight document" true
            (has heat "\"heat_enabled\"");
          let heat_n = fetch "/heat?n=1" in
          Alcotest.(check bool) "/heat?n=1 is 200" true
            (has heat_n "HTTP/1.0 200 OK");
          (* A malformed query is the client's bug: answer 400, never a
             500 or a silently wrong document. *)
          let bad = fetch "/heat?n=junk" in
          Alcotest.(check bool) "/heat?n=junk is 400" true
            (has bad "HTTP/1.0 400 Bad Request");
          let bad_key = fetch "/heat?depth=3" in
          Alcotest.(check bool) "/heat unknown param is 400" true
            (has bad_key "HTTP/1.0 400 Bad Request");
          let missing = fetch "/nope" in
          Alcotest.(check bool) "unknown path is 404" true
            (has missing "HTTP/1.0 404 Not Found");
          Alcotest.(check bool) "404 names the path" true
            (has missing "no such endpoint: /nope")))

(* --- read-path overhead guard --- *)

let test_read_overhead () =
  let table =
    Rp_ht.create ~initial_size:4096 ~auto_resize:false
      ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal ()
  in
  let entries = 4096 in
  for i = 0 to entries - 1 do
    Rp_ht.insert table i i
  done;
  let iters = 200_000 in
  let time_lookups () =
    let start = Unix.gettimeofday () in
    for i = 0 to iters - 1 do
      ignore (Rp_ht.find table (i land (entries - 1)))
    done;
    Unix.gettimeofday () -. start
  in
  (* Alternate enabled/disabled trials and keep the minimum of each side:
     alternation cancels drift (frequency scaling, cache warm-up) that
     would bias whichever side ran last, and the minimum is the robust
     estimator of true cost under scheduler noise. The guard is the
     issue's bound: instrumented read path within 15% of the
     kill-switched one. *)
  ignore (time_lookups ());
  (* warm up *)
  let instrumented = ref infinity and uninstrumented = ref infinity in
  Fun.protect
    ~finally:(fun () -> set_enabled true)
    (fun () ->
      for _ = 1 to 7 do
        set_enabled true;
        instrumented := Float.min !instrumented (time_lookups ());
        set_enabled false;
        uninstrumented := Float.min !uninstrumented (time_lookups ())
      done);
  let instrumented = !instrumented and uninstrumented = !uninstrumented in
  let ratio = instrumented /. uninstrumented in
  Printf.printf "read-path overhead: %.0f vs %.0f ns/1k (ratio %.3f)\n%!"
    (instrumented *. 1e9 /. float_of_int iters *. 1e3)
    (uninstrumented *. 1e9 /. float_of_int iters *. 1e3)
    ratio;
  Alcotest.(check bool)
    (Printf.sprintf "instrumented/uninstrumented = %.3f <= 1.15" ratio)
    true (ratio <= 1.15)

let () =
  Alcotest.run "rp_obs"
    [
      ( "counters",
        [
          Alcotest.test_case "4-domain exact sum" `Quick test_counter_domains;
          Alcotest.test_case "kill switch" `Quick test_counter_disabled;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "percentile bounds" `Quick test_histogram_percentiles;
          Alcotest.test_case "bucket boundaries" `Quick test_histogram_buckets;
          Alcotest.test_case "4-domain merge" `Quick test_histogram_domains;
        ] );
      ( "trace ring",
        [
          Alcotest.test_case "wraparound snapshot" `Quick test_trace_wraparound;
          Alcotest.test_case "concurrent emit" `Quick test_trace_concurrent;
        ] );
      ( "registry",
        [
          Alcotest.test_case "stats and json" `Quick test_registry_stats_and_json;
          Alcotest.test_case "prometheus exposition" `Quick test_prometheus_format;
        ] );
      ( "integration",
        [
          Alcotest.test_case "stats round-trip" `Quick test_stats_roundtrip;
          Alcotest.test_case "metrics http endpoint" `Quick test_metrics_http;
          Alcotest.test_case "read-path overhead" `Slow test_read_overhead;
        ] );
    ]
