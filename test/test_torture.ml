(* The torture harness itself: clean runs report zero violations on every
   implementation; configuration validation; report arithmetic. *)

let quick table ~resizers =
  {
    Rp_torture.Torture.default_config with
    table;
    duration = 0.25;
    readers = 2;
    writers = 1;
    resizers;
    resident_keys = 256;
    churn_keys = 128;
    small_size = 64;
    large_size = 1024;
  }

let run_clean table ~resizers () =
  let report = Rp_torture.Torture.run (quick table ~resizers) in
  Alcotest.(check int) "no violations" 0 (Rp_torture.Torture.violations report);
  Alcotest.(check bool) "readers progressed" true (report.reader_checks > 0);
  if resizers > 0 then
    Alcotest.(check bool) "resizes happened" true (report.resize_flips > 0)

(* Every implementation must survive the perturbation failpoints: the
   injected yields/delays change timing only, never semantics. *)
let run_faulted table ~resizers () =
  let config =
    { (quick table ~resizers) with fault_injection = true; duration = 0.15 }
  in
  let report = Rp_torture.Torture.run config in
  Alcotest.(check int) "no violations with faults" 0
    (Rp_torture.Torture.violations report);
  Alcotest.(check bool) "no armed sites left behind" true
    (Rp_fault.armed_sites () = [])

let test_fault_injection () =
  let config = { (quick "rp" ~resizers:1) with fault_injection = true } in
  let report = Rp_torture.Torture.run config in
  Alcotest.(check int) "no violations with faults" 0
    (Rp_torture.Torture.violations report)

let test_no_writers_or_resizers () =
  let config = { (quick "rp" ~resizers:0) with writers = 0 } in
  let report = Rp_torture.Torture.run config in
  Alcotest.(check int) "quiet run clean" 0 (Rp_torture.Torture.violations report);
  Alcotest.(check int) "no writer ops" 0 report.writer_ops;
  Alcotest.(check int) "no flips" 0 report.resize_flips

let test_validation () =
  let bad f = Alcotest.(check bool) "rejected" true (match f () with
    | exception Invalid_argument _ -> true
    | _ -> false)
  in
  bad (fun () -> Rp_torture.Torture.run { Rp_torture.Torture.default_config with table = "nope" });
  bad (fun () -> Rp_torture.Torture.run { Rp_torture.Torture.default_config with duration = 0.0 });
  bad (fun () -> Rp_torture.Torture.run { Rp_torture.Torture.default_config with readers = 0 });
  bad (fun () ->
      Rp_torture.Torture.run
        { Rp_torture.Torture.default_config with table = "rp-fixed"; resizers = 1 })

let test_scenario_crash_resizer () =
  let config =
    {
      (quick "rp" ~resizers:2) with
      scenario = "crash_resizer";
      duration = 0.4;
    }
  in
  let report = Rp_torture.Torture.run config in
  Alcotest.(check int) "no violations under resizer crashes" 0
    (Rp_torture.Torture.violations report);
  Alcotest.(check bool) "resizers were killed" true (report.faults_injected > 0);
  Alcotest.(check bool) "writers completed interrupted unzips" true
    (report.recoveries >= 1)

let test_scenario_stalled_reader () =
  let config =
    { (quick "rp" ~resizers:1) with scenario = "stalled_reader"; duration = 0.4 }
  in
  let report = Rp_torture.Torture.run config in
  Alcotest.(check int) "no violations with a stalled reader" 0
    (Rp_torture.Torture.violations report);
  Alcotest.(check bool) "watchdog fired" true (report.stalls_detected >= 1)

let test_scenario_torn_io () =
  let config =
    {
      (quick "rp" ~resizers:0) with
      scenario = "torn_io";
      duration = 0.3;
      resident_keys = 32;
      churn_keys = 32;
    }
  in
  let report = Rp_torture.Torture.run config in
  Alcotest.(check int) "no violations over torn transport" 0
    (Rp_torture.Torture.violations report);
  Alcotest.(check bool) "faults were injected" true (report.faults_injected > 0);
  Alcotest.(check bool) "clients made progress" true (report.reader_checks > 0)

let test_scenario_validation () =
  let bad f =
    Alcotest.(check bool) "rejected" true
      (match f () with exception Invalid_argument _ -> true | _ -> false)
  in
  bad (fun () ->
      Rp_torture.Torture.run
        { Rp_torture.Torture.default_config with scenario = "nope" });
  bad (fun () ->
      Rp_torture.Torture.run
        {
          Rp_torture.Torture.default_config with
          scenario = "crash_resizer";
          table = "lock";
        });
  Alcotest.(check (list string))
    "scenario names"
    [
      "steady"; "crash_resizer"; "lazy_split_crash"; "mixed_rw";
      "stalled_reader"; "torn_io"; "crash_recovery"; "overload_storm";
      "slow_client"; "disk_full"; "replication_divergence"; "tier_crash";
    ]
    Rp_torture.Torture.scenario_names

let test_report_rendering () =
  let report =
    {
      Rp_torture.Torture.reader_checks = 10;
      missing_resident = 0;
      wrong_value = 0;
      writer_ops = 5;
      resize_flips = 2;
      faults_injected = 3;
      stalls_detected = 0;
      recoveries = 1;
      elapsed = 1.0;
      metrics = [ ("rp_ht_lookups_total", "10") ];
    }
  in
  let s = Format.asprintf "%a" Rp_torture.Torture.pp_report report in
  Alcotest.(check bool) "mentions PASS" true
    (String.length s > 0
    &&
    let rec find i =
      i + 4 <= String.length s && (String.sub s i 4 = "PASS" || find (i + 1))
    in
    find 0)

let () =
  Alcotest.run "torture"
    [
      ( "clean runs",
        [
          Alcotest.test_case "rp" `Slow (run_clean "rp" ~resizers:1);
          Alcotest.test_case "rp-qsbr" `Slow (run_clean "rp-qsbr" ~resizers:1);
          Alcotest.test_case "rp-fixed" `Slow (run_clean "rp-fixed" ~resizers:0);
          Alcotest.test_case "ddds" `Slow (run_clean "ddds" ~resizers:1);
          Alcotest.test_case "rwlock" `Slow (run_clean "rwlock" ~resizers:1);
          Alcotest.test_case "lock" `Slow (run_clean "lock" ~resizers:1);
          Alcotest.test_case "xu" `Slow (run_clean "xu" ~resizers:1);
        ] );
      ( "fault matrix",
        [
          Alcotest.test_case "rp" `Slow (run_faulted "rp" ~resizers:1);
          Alcotest.test_case "rp-qsbr" `Slow (run_faulted "rp-qsbr" ~resizers:1);
          Alcotest.test_case "rp-fixed" `Slow (run_faulted "rp-fixed" ~resizers:0);
          Alcotest.test_case "ddds" `Slow (run_faulted "ddds" ~resizers:1);
          Alcotest.test_case "rwlock" `Slow (run_faulted "rwlock" ~resizers:1);
          Alcotest.test_case "lock" `Slow (run_faulted "lock" ~resizers:1);
          Alcotest.test_case "xu" `Slow (run_faulted "xu" ~resizers:1);
        ] );
      ( "modes",
        [
          Alcotest.test_case "fault injection" `Slow test_fault_injection;
          Alcotest.test_case "quiet run" `Slow test_no_writers_or_resizers;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "crash_resizer" `Slow test_scenario_crash_resizer;
          Alcotest.test_case "stalled_reader" `Slow test_scenario_stalled_reader;
          Alcotest.test_case "torn_io" `Slow test_scenario_torn_io;
          Alcotest.test_case "scenario validation" `Quick test_scenario_validation;
        ] );
      ( "config",
        [
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "report rendering" `Quick test_report_rendering;
        ] );
    ]
