(* Fault-injected torture gate, run by `dune build @torture` (and wired
   into @runtest). Budget: well under two seconds of run time total —
   each scenario gets one short, seeded, fault-injected burst; any oracle
   violation fails the build. *)

let base =
  {
    Rp_torture.Torture.default_config with
    duration = 0.12;
    readers = 2;
    writers = 1;
    resizers = 1;
    resident_keys = 128;
    churn_keys = 64;
    small_size = 32;
    large_size = 256;
    fault_injection = true;
    seed = 2026;
  }

let failures = ref 0
let reports : (string * Rp_torture.Torture.report) list ref = ref []

let run name config =
  let report = Rp_torture.Torture.run config in
  let violations = Rp_torture.Torture.violations report in
  Printf.printf "%-32s checks=%d faults=%d stalls=%d recoveries=%d %s\n%!" name
    report.reader_checks report.faults_injected report.stalls_detected
    report.recoveries
    (if violations = 0 then "ok" else Printf.sprintf "FAIL (%d violations)" violations);
  if violations > 0 then incr failures;
  reports := (name, report) :: !reports;
  report

(* One JSON object per scenario: the report summary plus the end-of-run
   registry snapshot (every rendered metric value is numeric, so they are
   emitted bare). *)
let report_json buf (r : Rp_torture.Torture.report) =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"reader_checks\":%d,\"violations\":%d,\"writer_ops\":%d,\
        \"resize_flips\":%d,\"faults_injected\":%d,\"stalls_detected\":%d,\
        \"recoveries\":%d,\"elapsed\":%.3f,\"metrics\":{"
       r.reader_checks
       (Rp_torture.Torture.violations r)
       r.writer_ops r.resize_flips r.faults_injected r.stalls_detected
       r.recoveries r.elapsed);
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%S:%s" k v))
    r.metrics;
  Buffer.add_string buf "}}"

let write_report_file path =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  List.iteri
    (fun i (name, r) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (Printf.sprintf "  %S: " name);
      report_json buf r)
    (List.rev !reports);
  Buffer.add_string buf "\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

let () =
  (* steady, faults on, across the rp flavours (baselines have their own
     clean-run coverage in the alcotest suite). *)
  ignore (run "steady/rp" base);
  ignore (run "steady/rp-qsbr" { base with table = "rp-qsbr" });
  ignore
    (run "steady/rp-fixed" { base with table = "rp-fixed"; resizers = 0 });
  let crash = run "crash_resizer" { base with scenario = "crash_resizer" } in
  if crash.faults_injected = 0 then begin
    Printf.printf "crash_resizer: no faults fired\n%!";
    incr failures
  end;
  let lazy_crash =
    run "lazy_split_crash"
      { base with scenario = "lazy_split_crash"; writers = 2; churn_keys = 96 }
  in
  if lazy_crash.faults_injected = 0 then begin
    Printf.printf "lazy_split_crash: no writer was ever killed\n%!";
    incr failures
  end;
  if lazy_crash.recoveries = 0 then begin
    Printf.printf "lazy_split_crash: no split was recovered by a peer\n%!";
    incr failures
  end;
  (* Exact per-range model equality under a concurrent 50/50 GET/SET mix
     across striped writers; resize_flips carries the lazy-split count. *)
  let mixed =
    run "mixed_rw"
      { base with scenario = "mixed_rw"; writers = 4; churn_keys = 256 }
  in
  if mixed.writer_ops = 0 then begin
    Printf.printf "mixed_rw: writers made no progress\n%!";
    incr failures
  end;
  if mixed.resize_flips = 0 then begin
    Printf.printf "mixed_rw: no bucket was ever split lazily\n%!";
    incr failures
  end;
  let stalled =
    run "stalled_reader"
      { base with scenario = "stalled_reader"; duration = 0.2 }
  in
  if stalled.stalls_detected = 0 then begin
    Printf.printf "stalled_reader: watchdog never fired\n%!";
    incr failures
  end;
  let torn =
    run "torn_io"
      { base with scenario = "torn_io"; resident_keys = 32; churn_keys = 32 }
  in
  if torn.faults_injected = 0 then begin
    Printf.printf "torn_io: no faults fired\n%!";
    incr failures
  end;
  let recovered =
    run "crash_recovery"
      { base with scenario = "crash_recovery"; duration = 0.2; churn_keys = 96 }
  in
  (* The oracle (exact model equality after the staged kill -9) is covered
     by violations; also insist the durable machinery actually ran. *)
  if recovered.recoveries < 2 then begin
    Printf.printf "crash_recovery: no snapshot published during the run\n%!";
    incr failures
  end;
  if recovered.faults_injected = 0 then begin
    Printf.printf "crash_recovery: staged crash never fired\n%!";
    incr failures
  end;
  (* Guard scenarios turn fault_injection off: their chaos is their own
     (connection floods, hung sockets, failing appends), and the RCU
     perturbation sites would only eat into the short budget. *)
  let storm =
    run "overload_storm"
      { base with scenario = "overload_storm"; fault_injection = false }
  in
  if storm.faults_injected = 0 then begin
    Printf.printf "overload_storm: nothing was shed\n%!";
    incr failures
  end;
  if storm.recoveries = 0 then begin
    Printf.printf "overload_storm: guard never returned to Healthy\n%!";
    incr failures
  end;
  let slow =
    run "slow_client"
      { base with scenario = "slow_client"; fault_injection = false }
  in
  if slow.faults_injected = 0 then begin
    Printf.printf "slow_client: hung connection was never killed\n%!";
    incr failures
  end;
  if slow.reader_checks = 0 then begin
    Printf.printf "slow_client: well-behaved client made no progress\n%!";
    incr failures
  end;
  let disk =
    run "disk_full"
      { base with scenario = "disk_full"; fault_injection = false }
  in
  if disk.faults_injected = 0 then begin
    Printf.printf "disk_full: append failpoint never fired\n%!";
    incr failures
  end;
  if disk.recoveries = 0 then begin
    Printf.printf "disk_full: guard never returned to Healthy\n%!";
    incr failures
  end;
  (* Real leader/follower processes; the SIGKILL is the fault, the
     promoted follower the recovery. Needs a little more runway than the
     in-process scenarios: child startup, catch-up, watermark polling. *)
  let repl =
    run "replication_divergence"
      {
        base with
        scenario = "replication_divergence";
        fault_injection = false;
        duration = 0.45;
        churn_keys = 96;
      }
  in
  if repl.faults_injected = 0 then begin
    Printf.printf "replication_divergence: leader was never killed\n%!";
    incr failures
  end;
  if repl.recoveries < 2 then begin
    Printf.printf
      "replication_divergence: promotion or ring failover did not complete\n%!";
    incr failures
  end;
  (* Exact-model oracle across a staged SIGKILL with the cold tier live:
     violations cover readability of every acked SET; on top of that the
     faults must actually have fired (mid-demotion / mid-compaction
     kills) and the restarted store must have demoted AND promoted —
     stalls_detected flags a restart that never touched the tier. *)
  let tier =
    run "tier_crash"
      { base with scenario = "tier_crash"; duration = 0.2; churn_keys = 96 }
  in
  if tier.faults_injected = 0 then begin
    Printf.printf "tier_crash: staged kill never fired\n%!";
    incr failures
  end;
  if tier.stalls_detected > 0 then begin
    Printf.printf "tier_crash: restart never demoted or never promoted\n%!";
    incr failures
  end;
  (match Sys.argv with
  | [| _; "-o"; path |] -> write_report_file path
  | _ -> ());
  if !failures > 0 then begin
    Printf.printf "torture gate: %d scenario(s) failed\n%!" !failures;
    exit 1
  end;
  print_endline "torture gate: all scenarios clean"
