(* Binary protocol: codec round trips, dispatch semantics (incl. quiet ops
   and counter seeding), socket integration with protocol auto-detection,
   and frame fuzzing. *)

open Memcached

let make_store () = Store.create ~backend:Store.Rp ~initial_size:64 ()

let request ?(key = "") ?(value = "") ?(extras = "") ?(cas = 0) ?(opaque = 7)
    opcode : Binary_protocol.request =
  { opcode; key; value; extras; opaque; cas }

(* --- codec --- *)

let test_opcode_bytes () =
  List.iter
    (fun opcode ->
      match Binary_protocol.(opcode_of_byte (opcode_to_byte opcode)) with
      | Some back when back = opcode -> ()
      | _ -> Alcotest.fail "opcode byte round trip")
    Binary_protocol.
      [
        Get; Set; Add; Replace; Delete; Increment; Decrement; Quit; Flush;
        GetQ; Noop; Version; GetK; GetKQ; Append; Prepend; Stat; Touch;
        GAT; GATQ;
      ];
  Alcotest.(check (option reject)) "unknown opcode" None
    (Binary_protocol.opcode_of_byte 0x42 |> Option.map (fun _ -> ()))

let test_status_ints () =
  List.iter
    (fun status ->
      Alcotest.(check bool)
        "status int round trip" true
        (Binary_protocol.(status_of_int (status_to_int status)) = status))
    Binary_protocol.
      [
        Ok_status; Key_not_found; Key_exists; Value_too_large;
        Invalid_arguments; Item_not_stored; Non_numeric_value; Unknown_command;
      ]

let test_request_roundtrip () =
  let requests =
    [
      request Binary_protocol.Get ~key:"some-key";
      request Binary_protocol.Set ~key:"k" ~value:"payload"
        ~extras:(Binary_protocol.set_extras ~flags:99 ~exptime:3600)
        ~cas:12345;
      request Binary_protocol.Increment ~key:"c"
        ~extras:(Binary_protocol.counter_extras ~delta:5 ~initial:10 ~exptime:0);
      request Binary_protocol.Noop;
      request Binary_protocol.Quit;
    ]
  in
  List.iter
    (fun r ->
      let p = Binary_protocol.Parser.create () in
      Binary_protocol.Parser.feed p (Binary_protocol.encode_request r);
      match Binary_protocol.Parser.next p with
      | Some (Ok parsed) ->
          if parsed <> r then Alcotest.fail "request round trip changed"
      | _ -> Alcotest.fail "request round trip failed")
    requests

let test_response_roundtrip () =
  let response : Binary_protocol.response =
    {
      r_opcode = Binary_protocol.Get;
      status = Binary_protocol.Ok_status;
      r_key = "";
      r_value = "hello\r\nbinary\x00world";
      r_extras = Binary_protocol.get_response_extras ~flags:77;
      r_opaque = 0xDEAD;
      r_cas = 42;
    }
  in
  let p = Binary_protocol.Response_parser.create () in
  Binary_protocol.Response_parser.feed p (Binary_protocol.encode_response response);
  match Binary_protocol.Response_parser.next p with
  | Some (Ok parsed) ->
      Alcotest.(check bool) "identical" true (parsed = response)
  | _ -> Alcotest.fail "response round trip failed"

let test_incremental_frame () =
  let r =
    request Binary_protocol.Set ~key:"key" ~value:(String.make 100 'v')
      ~extras:(Binary_protocol.set_extras ~flags:0 ~exptime:0)
  in
  let encoded = Binary_protocol.encode_request r in
  let p = Binary_protocol.Parser.create () in
  String.iteri
    (fun i c ->
      Binary_protocol.Parser.feed p (String.make 1 c);
      match Binary_protocol.Parser.next p with
      | Some (Ok parsed) ->
          Alcotest.(check int) "completes at last byte" (String.length encoded - 1) i;
          Alcotest.(check bool) "intact" true (parsed = r)
      | Some (Error e) -> Alcotest.failf "error mid-frame: %s" e
      | None -> ())
    encoded

let test_bad_magic_rejected () =
  let p = Binary_protocol.Parser.create () in
  Binary_protocol.Parser.feed p (String.make 24 '\x55');
  match Binary_protocol.Parser.next p with
  | Some (Error _) -> ()
  | _ -> Alcotest.fail "bad magic accepted"

let test_u64_roundtrip () =
  List.iter
    (fun v ->
      Alcotest.(check int)
        (Printf.sprintf "u64 %d" v)
        v
        (Binary_protocol.parse_u64 (Binary_protocol.u64_bytes v) 0))
    [ 0; 1; 255; 65536; 1 lsl 40; (1 lsl 62) - 1 ]

(* --- dispatch --- *)

let test_dispatch_set_get () =
  let store = make_store () in
  let set =
    request Binary_protocol.Set ~key:"k" ~value:"v"
      ~extras:(Binary_protocol.set_extras ~flags:3 ~exptime:0)
  in
  (match Binary_server.handle store set with
  | [ r ] ->
      Alcotest.(check bool) "stored" true (r.status = Binary_protocol.Ok_status);
      Alcotest.(check bool) "cas returned" true (r.r_cas > 0)
  | _ -> Alcotest.fail "set reply shape");
  match Binary_server.handle store (request Binary_protocol.Get ~key:"k") with
  | [ r ] ->
      Alcotest.(check string) "value" "v" r.r_value;
      Alcotest.(check int) "flags in extras" 3 (Binary_protocol.parse_u32 r.r_extras 0)
  | _ -> Alcotest.fail "get reply shape"

let test_dispatch_quiet_get () =
  let store = make_store () in
  Alcotest.(check int) "GetQ miss is silent" 0
    (List.length (Binary_server.handle store (request Binary_protocol.GetQ ~key:"nope")));
  (match Binary_server.handle store (request Binary_protocol.Get ~key:"nope") with
  | [ r ] ->
      Alcotest.(check bool) "loud miss" true (r.status = Binary_protocol.Key_not_found)
  | _ -> Alcotest.fail "loud get shape");
  ignore
    (Binary_server.handle store
       (request Binary_protocol.Set ~key:"yes" ~value:"v"
          ~extras:(Binary_protocol.set_extras ~flags:0 ~exptime:0)));
  match Binary_server.handle store (request Binary_protocol.GetKQ ~key:"yes") with
  | [ r ] -> Alcotest.(check string) "GetKQ echoes key" "yes" r.r_key
  | _ -> Alcotest.fail "GetKQ hit shape"

let test_dispatch_cas_via_set () =
  let store = make_store () in
  ignore
    (Binary_server.handle store
       (request Binary_protocol.Set ~key:"k" ~value:"v1"
          ~extras:(Binary_protocol.set_extras ~flags:0 ~exptime:0)));
  let cas =
    match Binary_server.handle store (request Binary_protocol.Get ~key:"k") with
    | [ r ] -> r.r_cas
    | _ -> Alcotest.fail "get"
  in
  let set_with_cas c =
    match
      Binary_server.handle store
        (request Binary_protocol.Set ~key:"k" ~value:"v2" ~cas:c
           ~extras:(Binary_protocol.set_extras ~flags:0 ~exptime:0))
    with
    | [ r ] -> r.status
    | _ -> Alcotest.fail "set"
  in
  Alcotest.(check bool) "stale cas rejected" true
    (set_with_cas (cas + 1) = Binary_protocol.Key_exists);
  Alcotest.(check bool) "fresh cas accepted" true
    (set_with_cas cas = Binary_protocol.Ok_status)

let test_dispatch_counter_seeding () =
  let store = make_store () in
  let incr ?(exptime = 0) key delta initial =
    match
      Binary_server.handle store
        (request Binary_protocol.Increment ~key
           ~extras:(Binary_protocol.counter_extras ~delta ~initial ~exptime))
    with
    | [ r ] -> r
    | _ -> Alcotest.fail "incr reply shape"
  in
  (* Miss with initial: seeds. *)
  let r = incr "c" 5 100 in
  Alcotest.(check int) "seeded" 100 (Binary_protocol.parse_u64 r.r_value 0);
  (* Hit: applies delta. *)
  let r = incr "c" 5 100 in
  Alcotest.(check int) "incremented" 105 (Binary_protocol.parse_u64 r.r_value 0);
  (* Miss with exptime = 0xffffffff: refuses to create. *)
  let r = incr ~exptime:0xffffffff "fresh" 1 0 in
  Alcotest.(check bool) "no-create miss" true
    (r.status = Binary_protocol.Key_not_found)

let test_dispatch_stat_terminator () =
  let store = make_store () in
  let replies = Binary_server.handle store (request Binary_protocol.Stat) in
  Alcotest.(check bool) "several stats" true (List.length replies > 1);
  let last = List.nth replies (List.length replies - 1) in
  Alcotest.(check string) "empty terminator" "" last.r_key;
  Alcotest.(check string) "empty terminator value" "" last.r_value

let test_dispatch_stat_sections () =
  let store = make_store () in
  let section key =
    let replies =
      Binary_server.handle store (request Binary_protocol.Stat ~key)
    in
    List.filter_map
      (fun (r : Binary_protocol.response) ->
        if r.r_key = "" then None else Some (r.r_key, r.r_value))
      replies
  in
  (* rp: the store is on the Rp backend, so the section is populated. *)
  Alcotest.(check bool) "stats rp non-empty" true (section "rp" <> []);
  Alcotest.(check bool) "rp_ht stats present" true
    (List.exists (fun (k, _) -> String.length k >= 5 && String.sub k 0 5 = "rp_ht")
       (section "rp"));
  (* persist: not attached — empty section, but still a clean terminator. *)
  (match
     Binary_server.handle store (request Binary_protocol.Stat ~key:"persist")
   with
  | [ last ] -> Alcotest.(check string) "bare terminator" "" last.r_key
  | _ -> Alcotest.fail "persist section shape");
  (* trace: the flight recorder always reports its state. *)
  Alcotest.(check bool) "stats trace has sample rate" true
    (List.mem_assoc "trace_sample" (section "trace"));
  (* unknown section: a single error reply. *)
  match
    Binary_server.handle store (request Binary_protocol.Stat ~key:"bogus")
  with
  | [ r ] ->
      Alcotest.(check bool) "unknown section rejected" true
        (r.status = Binary_protocol.Invalid_arguments)
  | _ -> Alcotest.fail "unknown section shape"

let test_dispatch_touch_gat () =
  let store = make_store () in
  ignore
    (Binary_server.handle store
       (request Binary_protocol.Set ~key:"g" ~value:"gv"
          ~extras:(Binary_protocol.set_extras ~flags:9 ~exptime:0)));
  (* touch round trip *)
  (match
     Binary_server.handle store
       (request Binary_protocol.Touch ~key:"g"
          ~extras:(Binary_protocol.touch_extras ~exptime:3600))
   with
  | [ r ] ->
      Alcotest.(check bool) "touch ok" true (r.status = Binary_protocol.Ok_status)
  | _ -> Alcotest.fail "touch shape");
  (match
     Binary_server.handle store
       (request Binary_protocol.Touch ~key:"ghost"
          ~extras:(Binary_protocol.touch_extras ~exptime:3600))
   with
  | [ r ] ->
      Alcotest.(check bool) "touch miss" true
        (r.status = Binary_protocol.Key_not_found)
  | _ -> Alcotest.fail "touch miss shape");
  (* GAT returns the value + flags like a get *)
  (match
     Binary_server.handle store
       (request Binary_protocol.GAT ~key:"g"
          ~extras:(Binary_protocol.touch_extras ~exptime:3600))
   with
  | [ r ] ->
      Alcotest.(check string) "gat value" "gv" r.r_value;
      Alcotest.(check int) "gat flags" 9 (Binary_protocol.parse_u32 r.r_extras 0)
  | _ -> Alcotest.fail "gat shape");
  (* loud GAT miss vs silent GATQ miss *)
  (match
     Binary_server.handle store
       (request Binary_protocol.GAT ~key:"ghost"
          ~extras:(Binary_protocol.touch_extras ~exptime:60))
   with
  | [ r ] ->
      Alcotest.(check bool) "gat miss" true
        (r.status = Binary_protocol.Key_not_found)
  | _ -> Alcotest.fail "gat miss shape");
  Alcotest.(check int) "gatq miss is silent" 0
    (List.length
       (Binary_server.handle store
          (request Binary_protocol.GATQ ~key:"ghost"
             ~extras:(Binary_protocol.touch_extras ~exptime:60))));
  (* malformed extras *)
  match Binary_server.handle store (request Binary_protocol.GAT ~key:"g") with
  | [ r ] ->
      Alcotest.(check bool) "gat without extras rejected" true
        (r.status = Binary_protocol.Invalid_arguments)
  | _ -> Alcotest.fail "bad gat shape"

let test_dispatch_misc () =
  let store = make_store () in
  (match Binary_server.handle store (request Binary_protocol.Version) with
  | [ r ] -> Alcotest.(check string) "version" Server.version_string r.r_value
  | _ -> Alcotest.fail "version");
  (match Binary_server.handle store (request Binary_protocol.Noop) with
  | [ r ] -> Alcotest.(check bool) "noop ok" true (r.status = Binary_protocol.Ok_status)
  | _ -> Alcotest.fail "noop");
  Alcotest.(check int) "quit silent" 0
    (List.length (Binary_server.handle store (request Binary_protocol.Quit)));
  (* Malformed extras *)
  match
    Binary_server.handle store (request Binary_protocol.Set ~key:"k" ~value:"v")
  with
  | [ r ] ->
      Alcotest.(check bool) "set without extras rejected" true
        (r.status = Binary_protocol.Invalid_arguments)
  | _ -> Alcotest.fail "bad set shape"

(* --- socket integration with auto-detection --- *)

let with_server f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rp-mc-bin-%d.sock" (Unix.getpid ()))
  in
  let store = make_store () in
  let server = Server.start ~store (Server.Unix_socket path) in
  (match f (Server.Unix_socket path) with
  | () -> Server.stop server
  | exception e ->
      Server.stop server;
      raise e)

let test_socket_binary_roundtrip () =
  with_server (fun addr ->
      let c = Binary_client.connect addr in
      Alcotest.(check bool) "set" true
        (Binary_client.set c ~key:"bk" ~data:"bv" () = Binary_protocol.Ok_status);
      (match Binary_client.get c "bk" with
      | Some (v, _) -> Alcotest.(check string) "get" "bv" v
      | None -> Alcotest.fail "binary get missed");
      Alcotest.(check (option reject)) "miss" None
        (Binary_client.get c "ghost" |> Option.map (fun _ -> ()));
      Alcotest.(check bool) "delete" true (Binary_client.delete c "bk");
      Alcotest.(check bool) "delete again" false (Binary_client.delete c "bk");
      Alcotest.(check bool) "set for touch" true
        (Binary_client.set c ~key:"tk" ~data:"tv" () = Binary_protocol.Ok_status);
      Alcotest.(check bool) "touch over socket" true
        (Binary_client.touch c ~key:"tk" ~exptime:3600);
      Alcotest.(check bool) "touch miss over socket" false
        (Binary_client.touch c ~key:"ghost" ~exptime:3600);
      (match Binary_client.gat c ~key:"tk" ~exptime:60 with
      | Some (v, _) -> Alcotest.(check string) "gat over socket" "tv" v
      | None -> Alcotest.fail "gat missed");
      Alcotest.(check (option reject)) "gat miss over socket" None
        (Binary_client.gat c ~key:"ghost" ~exptime:60 |> Option.map (fun _ -> ()));
      Alcotest.(check string) "version" Server.version_string (Binary_client.version c);
      Binary_client.noop c;
      Binary_client.close c)

let test_socket_binary_counters_and_stats () =
  with_server (fun addr ->
      let c = Binary_client.connect addr in
      Alcotest.(check (option int)) "incr seeds" (Some 10)
        (Binary_client.incr c ~initial:10 "cnt" 5);
      Alcotest.(check (option int)) "incr applies" (Some 15)
        (Binary_client.incr c ~initial:10 "cnt" 5);
      Alcotest.(check (option int)) "decr" (Some 12) (Binary_client.decr c "cnt" 3);
      let stats = Binary_client.stats c in
      Alcotest.(check bool) "stats non-empty" true (List.length stats > 0);
      Alcotest.(check bool) "has backend stat" true (List.mem_assoc "backend" stats);
      let trace = Binary_client.stats ~key:"trace" c in
      Alcotest.(check bool) "keyed trace section" true
        (List.mem_assoc "trace_enabled" trace);
      Binary_client.close c)

let test_socket_both_protocols_share_store () =
  with_server (fun addr ->
      (* Text client writes, binary client reads — same store. *)
      let text = Client.connect addr in
      let bin = Binary_client.connect addr in
      Alcotest.(check bool) "text set" true
        (Client.set text ~key:"shared" ~data:"from-text" ());
      (match Binary_client.get bin "shared" with
      | Some (v, _) -> Alcotest.(check string) "binary reads it" "from-text" v
      | None -> Alcotest.fail "binary missed text write");
      Alcotest.(check bool) "binary set" true
        (Binary_client.set bin ~key:"shared2" ~data:"from-binary" ()
        = Binary_protocol.Ok_status);
      (match Client.get text "shared2" with
      | Some v -> Alcotest.(check string) "text reads it" "from-binary" v.vdata
      | None -> Alcotest.fail "text missed binary write");
      Client.close text;
      Binary_client.close bin)

(* --- fuzz --- *)

let prop_parser_never_crashes =
  QCheck.Test.make ~name:"binary parser survives arbitrary bytes" ~count:500
    QCheck.(string_of_size Gen.(int_bound 200))
    (fun garbage ->
      let p = Binary_protocol.Parser.create () in
      Binary_protocol.Parser.feed p garbage;
      let rec drain budget =
        if budget = 0 then true
        else
          match Binary_protocol.Parser.next p with
          | Some (Ok _) -> drain (budget - 1)
          | Some (Error _) -> true (* connection would drop *)
          | None -> true
      in
      drain 100)

let prop_value_roundtrip =
  QCheck.Test.make ~name:"binary values round trip any bytes" ~count:300
    QCheck.(pair (string_of_size Gen.(int_bound 100)) (string_of_size Gen.(int_bound 50)))
    (fun (value, extras) ->
      let r =
        request Binary_protocol.Set ~key:"k" ~value
          ~extras:(String.sub extras 0 (min 255 (String.length extras)))
      in
      let p = Binary_protocol.Parser.create () in
      Binary_protocol.Parser.feed p (Binary_protocol.encode_request r);
      match Binary_protocol.Parser.next p with
      | Some (Ok parsed) -> parsed = r
      | _ -> false)

let () =
  Alcotest.run "binary"
    [
      ( "codec",
        [
          Alcotest.test_case "opcode bytes" `Quick test_opcode_bytes;
          Alcotest.test_case "status ints" `Quick test_status_ints;
          Alcotest.test_case "request round trip" `Quick test_request_roundtrip;
          Alcotest.test_case "response round trip" `Quick test_response_roundtrip;
          Alcotest.test_case "incremental frame" `Quick test_incremental_frame;
          Alcotest.test_case "bad magic" `Quick test_bad_magic_rejected;
          Alcotest.test_case "u64 round trip" `Quick test_u64_roundtrip;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "set/get" `Quick test_dispatch_set_get;
          Alcotest.test_case "quiet gets" `Quick test_dispatch_quiet_get;
          Alcotest.test_case "cas via set" `Quick test_dispatch_cas_via_set;
          Alcotest.test_case "counter seeding" `Quick test_dispatch_counter_seeding;
          Alcotest.test_case "stat terminator" `Quick test_dispatch_stat_terminator;
          Alcotest.test_case "stat sections" `Quick test_dispatch_stat_sections;
          Alcotest.test_case "touch and gat" `Quick test_dispatch_touch_gat;
          Alcotest.test_case "misc + validation" `Quick test_dispatch_misc;
        ] );
      ( "socket",
        [
          Alcotest.test_case "binary round trip" `Quick test_socket_binary_roundtrip;
          Alcotest.test_case "counters and stats" `Quick
            test_socket_binary_counters_and_stats;
          Alcotest.test_case "text and binary share a store" `Quick
            test_socket_both_protocols_share_store;
        ] );
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest prop_parser_never_crashes;
          QCheck_alcotest.to_alcotest prop_value_roundtrip;
        ] );
    ]
