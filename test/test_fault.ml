(* The failpoint plane itself: trigger semantics, counter accounting,
   determinism under a fixed seed, reset between runs, I/O capping. *)

let site = "test.fault.site"

let with_clean f =
  Rp_fault.reset ();
  Fun.protect ~finally:Rp_fault.reset f

let test_unarmed_noop () =
  with_clean (fun () ->
      Rp_fault.point "never.mentioned";
      Alcotest.(check bool) "not armed" false (Rp_fault.armed "never.mentioned");
      Alcotest.(check int) "no hits" 0 (Rp_fault.hits "never.mentioned");
      Alcotest.(check int) "io passes through" 4096
        (Rp_fault.io_cap "never.mentioned" 4096))

let test_every_nth () =
  with_clean (fun () ->
      Rp_fault.arm site ~trigger:(Rp_fault.Every 3) ~action:Rp_fault.Yield;
      for _ = 1 to 10 do
        Rp_fault.point site
      done;
      Alcotest.(check int) "all evaluations counted" 10 (Rp_fault.hits site);
      Alcotest.(check int) "every third fired" 3 (Rp_fault.fires site))

let test_always_raises () =
  with_clean (fun () ->
      Rp_fault.arm site ~trigger:Rp_fault.Always ~action:Rp_fault.Raise;
      Alcotest.check_raises "raises the site name" (Rp_fault.Injected site)
        (fun () -> Rp_fault.point site);
      Alcotest.(check int) "fired once" 1 (Rp_fault.fires site))

let test_one_shot () =
  with_clean (fun () ->
      Rp_fault.arm site ~trigger:Rp_fault.One_shot ~action:Rp_fault.Yield;
      Rp_fault.point site;
      Alcotest.(check bool) "self-disarmed" false (Rp_fault.armed site);
      for _ = 1 to 5 do
        Rp_fault.point site
      done;
      Alcotest.(check int) "fired exactly once" 1 (Rp_fault.fires site))

let probability_pattern ~seed n =
  Rp_fault.reset ();
  Rp_fault.arm ~seed site ~trigger:(Rp_fault.Probability 0.3)
    ~action:Rp_fault.Raise;
  let pattern =
    List.init n (fun _ ->
        match Rp_fault.point site with () -> false | exception Rp_fault.Injected _ -> true)
  in
  (pattern, Rp_fault.fires site)

let test_probability_deterministic () =
  with_clean (fun () ->
      let p1, f1 = probability_pattern ~seed:42 200 in
      let p2, f2 = probability_pattern ~seed:42 200 in
      Alcotest.(check (list bool)) "same seed, same fire pattern" p1 p2;
      Alcotest.(check int) "same fire count" f1 f2;
      Alcotest.(check bool) "fires a plausible fraction" true (f1 > 20 && f1 < 140);
      let p3, _ = probability_pattern ~seed:43 200 in
      Alcotest.(check bool) "different seed differs" true (p1 <> p3))

let test_rearm_zeroes_counters () =
  with_clean (fun () ->
      Rp_fault.arm site ~trigger:Rp_fault.Always ~action:Rp_fault.Yield;
      for _ = 1 to 4 do
        Rp_fault.point site
      done;
      Rp_fault.arm site ~trigger:Rp_fault.Always ~action:Rp_fault.Yield;
      Alcotest.(check int) "hits zeroed" 0 (Rp_fault.hits site);
      Alcotest.(check int) "fires zeroed" 0 (Rp_fault.fires site))

let test_disarm_keeps_counters () =
  with_clean (fun () ->
      Rp_fault.arm site ~trigger:Rp_fault.Always ~action:Rp_fault.Yield;
      Rp_fault.point site;
      Rp_fault.disarm site;
      Rp_fault.point site;
      Alcotest.(check bool) "disarmed" false (Rp_fault.armed site);
      Alcotest.(check int) "counters survive disarm" 1 (Rp_fault.hits site);
      Rp_fault.disarm "never.armed" (* unknown sites ignored *))

let test_reset_forgets_everything () =
  with_clean (fun () ->
      Rp_fault.arm site ~trigger:Rp_fault.Always ~action:Rp_fault.Yield;
      Rp_fault.point site;
      Rp_fault.reset ();
      Alcotest.(check (list string)) "no armed sites" [] (Rp_fault.armed_sites ());
      Alcotest.(check int) "counters forgotten" 0 (Rp_fault.hits site))

let test_armed_sites_sorted () =
  with_clean (fun () ->
      Rp_fault.arm "b.site" ~trigger:Rp_fault.Always ~action:Rp_fault.Yield;
      Rp_fault.arm "a.site" ~trigger:Rp_fault.Always ~action:Rp_fault.Yield;
      Alcotest.(check (list string)) "sorted" [ "a.site"; "b.site" ]
        (Rp_fault.armed_sites ()))

let test_io_cap () =
  with_clean (fun () ->
      Rp_fault.arm site ~trigger:Rp_fault.Always ~action:(Rp_fault.Truncate_io 5);
      Alcotest.(check int) "capped" 5 (Rp_fault.io_cap site 4096);
      Alcotest.(check int) "short request untouched" 3 (Rp_fault.io_cap site 3);
      Rp_fault.arm site ~trigger:Rp_fault.Always ~action:(Rp_fault.Truncate_io 0);
      Alcotest.(check int) "always progresses" 1 (Rp_fault.io_cap site 4096);
      Rp_fault.arm site ~trigger:(Rp_fault.Every 2) ~action:(Rp_fault.Truncate_io 5);
      Alcotest.(check int) "miss passes through" 4096 (Rp_fault.io_cap site 4096);
      Alcotest.(check int) "hit caps" 5 (Rp_fault.io_cap site 4096))

let test_arm_validation () =
  with_clean (fun () ->
      let bad f =
        Alcotest.(check bool) "rejected" true
          (match f () with exception Invalid_argument _ -> true | _ -> false)
      in
      bad (fun () ->
          Rp_fault.arm site ~trigger:(Rp_fault.Every 0) ~action:Rp_fault.Yield);
      bad (fun () ->
          Rp_fault.arm site ~trigger:(Rp_fault.Probability (-0.1))
            ~action:Rp_fault.Yield);
      bad (fun () ->
          Rp_fault.arm site ~trigger:(Rp_fault.Probability 1.5)
            ~action:Rp_fault.Yield))

let test_delay_actually_delays () =
  with_clean (fun () ->
      Rp_fault.arm site ~trigger:Rp_fault.Always ~action:(Rp_fault.Delay 0.02);
      let t0 = Unix.gettimeofday () in
      Rp_fault.point site;
      Alcotest.(check bool) "slept" true (Unix.gettimeofday () -. t0 >= 0.015))

let () =
  Alcotest.run "rp_fault"
    [
      ( "triggers",
        [
          Alcotest.test_case "unarmed is a no-op" `Quick test_unarmed_noop;
          Alcotest.test_case "every nth" `Quick test_every_nth;
          Alcotest.test_case "always + raise" `Quick test_always_raises;
          Alcotest.test_case "one shot" `Quick test_one_shot;
          Alcotest.test_case "probability deterministic under seed" `Quick
            test_probability_deterministic;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "re-arm zeroes counters" `Quick
            test_rearm_zeroes_counters;
          Alcotest.test_case "disarm keeps counters" `Quick
            test_disarm_keeps_counters;
          Alcotest.test_case "reset forgets everything" `Quick
            test_reset_forgets_everything;
          Alcotest.test_case "armed_sites sorted" `Quick test_armed_sites_sorted;
          Alcotest.test_case "arm validation" `Quick test_arm_validation;
        ] );
      ( "actions",
        [
          Alcotest.test_case "io_cap" `Quick test_io_cap;
          Alcotest.test_case "delay" `Quick test_delay_actually_delays;
        ] );
    ]
