(* Cross-module concurrency torture tests (rcutorture-flavoured).

   These run real domains and verify the paper's consistency guarantee under
   adversarial interleavings: resident keys must be visible to every lookup
   at every moment, across resizes and writer churn, on every table
   implementation. *)

let duration = 0.4

(* Generic torture: [threads] readers verify resident keys while a resizer
   flips sizes and a writer churns a disjoint key range. *)
let torture (module T : Rp_baseline.Table_intf.TABLE) ~with_resize () =
  let resident = 512 in
  let t = T.create ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal ~size:256 () in
  for i = 0 to resident - 1 do
    T.insert t i (i * 3)
  done;
  let stop = Atomic.make false in
  let violations = Atomic.make 0 in
  let reader seed =
    Domain.spawn (fun () ->
        let prng = Rp_workload.Prng.create ~seed in
        let checks = ref 0 in
        while not (Atomic.get stop) do
          let k = Rp_workload.Prng.below prng resident in
          (match T.find t k with
          | Some v when v = k * 3 -> ()
          | Some _ | None -> Atomic.incr violations);
          incr checks
        done;
        T.reader_exit t;
        !checks)
  in
  let writer =
    Domain.spawn (fun () ->
        let prng = Rp_workload.Prng.create ~seed:99 in
        while not (Atomic.get stop) do
          let k = resident + Rp_workload.Prng.below prng 256 in
          if Rp_workload.Prng.bool prng then T.insert t k k
          else ignore (T.remove t k)
        done)
  in
  let resizer =
    if with_resize then
      Some
        (Domain.spawn (fun () ->
             while not (Atomic.get stop) do
               T.resize t 2048;
               T.resize t 128
             done))
    else None
  in
  let readers = List.init 2 (fun i -> reader (i + 1)) in
  Unix.sleepf duration;
  Atomic.set stop true;
  let checks = List.fold_left (fun acc d -> acc + Domain.join d) 0 readers in
  Domain.join writer;
  Option.iter Domain.join resizer;
  Alcotest.(check int) "no lookup violations" 0 (Atomic.get violations);
  Alcotest.(check bool) "made progress" true (checks > 0)

let rp_table = (module Rp_baseline.Rp_table.Resizable : Rp_baseline.Table_intf.TABLE)
let qsbr_table = (module Rp_baseline.Rp_table.Qsbr : Rp_baseline.Table_intf.TABLE)
let ddds_table = (module Rp_baseline.Ddds_ht : Rp_baseline.Table_intf.TABLE)
let rwlock_table = (module Rp_baseline.Rwlock_ht : Rp_baseline.Table_intf.TABLE)
let lock_table = (module Rp_baseline.Lock_ht : Rp_baseline.Table_intf.TABLE)
let xu_table = (module Rp_baseline.Xu_ht : Rp_baseline.Table_intf.TABLE)

(* RP-specific: whole-table invariant must hold after the dust settles. *)
let test_rp_invariants_after_torture () =
  let t =
    Rp_ht.create ~initial_size:128 ~auto_resize:false
      ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal ()
  in
  for i = 0 to 511 do
    Rp_ht.insert t i i
  done;
  let stop = Atomic.make false in
  let writer =
    Domain.spawn (fun () ->
        let prng = Rp_workload.Prng.create ~seed:5 in
        while not (Atomic.get stop) do
          let k = 1000 + Rp_workload.Prng.below prng 500 in
          if Rp_workload.Prng.bool prng then Rp_ht.insert t k k
          else ignore (Rp_ht.remove t k)
        done)
  in
  let resizer =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          Rp_ht.resize t 4096;
          Rp_ht.resize t 64
        done)
  in
  Unix.sleepf duration;
  Atomic.set stop true;
  Domain.join writer;
  Domain.join resizer;
  Rcu.barrier (Rp_ht.rcu t);
  (match Rp_ht.validate t with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "post-torture invariant: %s" msg);
  let stats = Rp_ht.resize_stats t in
  Alcotest.(check bool) "resizes happened" true (stats.expands > 0 && stats.shrinks > 0)

(* The atomic-move guarantee: a reader looking for "the entry" under either
   key must never find both absent. *)
let test_move_never_neither () =
  let t =
    Rp_ht.create ~initial_size:64 ~auto_resize:false ~hash:Rp_hashes.Hashfn.of_int
      ~equal:Int.equal ()
  in
  let key_a = 1 and key_b = 2 in
  Rp_ht.insert t key_a "payload";
  let stop = Atomic.make false in
  let neither = Atomic.make 0 in
  let reader =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          (* Check B first, then A: a mover going A->B could be missed by
             checking A first, B later only if the move were non-atomic in
             the never-neither sense. Check both orders. *)
          let b_then_a = Rp_ht.find t key_b = None && Rp_ht.find t key_a = None in
          let a_then_b = Rp_ht.find t key_a = None && Rp_ht.find t key_b = None in
          if a_then_b || b_then_a then Atomic.incr neither
        done)
  in
  for _ = 1 to 2000 do
    ignore (Rp_ht.move t ~from_key:key_a ~to_key:key_b Fun.id);
    ignore (Rp_ht.move t ~from_key:key_b ~to_key:key_a Fun.id)
  done;
  Atomic.set stop true;
  Domain.join reader;
  Alcotest.(check int) "never both absent" 0 (Atomic.get neither)

(* Value updates via replace must be atomic: readers see old or new, never
   an interleaving. *)
let test_replace_is_atomic () =
  let t =
    Rp_ht.create ~initial_size:16 ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal ()
  in
  Rp_ht.insert t 1 (0, 0);
  let stop = Atomic.make false in
  let torn = Atomic.make 0 in
  let reader =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          match Rp_ht.find t 1 with
          | Some (a, b) -> if b <> a * 7 then Atomic.incr torn
          | None -> Atomic.incr torn
        done)
  in
  for i = 1 to 50_000 do
    Rp_ht.replace t 1 (i, i * 7)
  done;
  Atomic.set stop true;
  Domain.join reader;
  Alcotest.(check int) "no torn values" 0 (Atomic.get torn)

(* Cross-stripe vs per-stripe: a shrinker repeatedly takes every stripe
   (ascending order) while writers insert into disjoint key ranges on
   whatever stripes those hash to; no binding may be lost and the table
   must be precise afterwards. *)
let test_shrink_vs_striped_inserts () =
  let t =
    Rp_ht.create ~initial_size:512 ~min_size:8 ~auto_resize:false
      ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal ()
  in
  Alcotest.(check bool) "write path is striped" true (Rp_ht.stripe_count t >= 2);
  let per_writer = 1000 in
  let writers =
    List.init 4 (fun w ->
        Domain.spawn (fun () ->
            for i = 0 to per_writer - 1 do
              let k = (w * 1_000_000) + i in
              Rp_ht.insert t k k
            done))
  in
  for _ = 1 to 8 do
    Rp_ht.resize t 8;
    Rp_ht.resize t 1024
  done;
  List.iter Domain.join writers;
  Rcu.barrier (Rp_ht.rcu t);
  (match Rp_ht.validate t with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "post-shrink invariant: %s" msg);
  for w = 0 to 3 do
    for i = 0 to per_writer - 1 do
      let k = (w * 1_000_000) + i in
      if Rp_ht.find t k <> Some k then
        Alcotest.failf "writer %d key %d lost across concurrent shrinks" w i
    done
  done

(* Store-level cross-stripe race: the clock sweep (single-flighted, one
   stripe per victim) runs against writers whose SETs keep auto-expanding
   the table — so sweeps interleave with lazy bucket splits on the same
   stripes. The store must stay serviceable and land under budget. *)
let test_eviction_races_lazy_splits () =
  let store =
    Memcached.Store.create ~backend:Memcached.Store.Rp
      ~max_bytes:(96 * 1024) ~initial_size:8 ()
  in
  let data = String.make 64 'v' in
  let stop = Atomic.make false in
  let writers =
    List.init 3 (fun w ->
        Domain.spawn (fun () ->
            let n = ref 0 and stored = ref 0 in
            while not (Atomic.get stop) do
              let key = Printf.sprintf "ev%d:%d" w !n in
              (match
                 Memcached.Store.set store ~key ~flags:0 ~exptime:0 ~data
               with
              | Memcached.Store.Stored -> incr stored
              | _ -> ());
              incr n
            done;
            !stored))
  in
  let evictor =
    Domain.spawn (fun () ->
        let sweeps = ref 0 in
        while not (Atomic.get stop) do
          ignore (Memcached.Store.evict_to_budget store);
          incr sweeps
        done;
        !sweeps)
  in
  Unix.sleepf duration;
  Atomic.set stop true;
  let stored = List.fold_left (fun a d -> a + Domain.join d) 0 writers in
  let sweeps = Domain.join evictor in
  Alcotest.(check bool) "writers stored" true (stored > 0);
  Alcotest.(check bool) "evictor swept" true (sweeps > 0);
  ignore (Memcached.Store.evict_to_budget store);
  Alcotest.(check bool) "under budget" true
    (Memcached.Store.bytes store <= Memcached.Store.max_bytes store);
  (match Memcached.Store.set store ~key:"post" ~flags:0 ~exptime:0 ~data with
  | Memcached.Store.Stored -> ()
  | _ -> Alcotest.fail "post-storm SET failed");
  match Memcached.Store.get store "post" with
  | Some _ -> ()
  | None -> Alcotest.fail "post-storm GET missed"

(* Store-level concurrency: GETs across domains while SETs and deletes run;
   hits must return intact values. *)
let store_torture backend () =
  let store =
    Memcached.Store.create ~backend ~initial_size:256 ~auto_resize:true ()
  in
  let keyspace = 512 in
  for i = 0 to keyspace - 1 do
    ignore
      (Memcached.Store.set store
         ~key:(Rp_workload.Keygen.string_key i)
         ~flags:i ~exptime:0
         ~data:(Printf.sprintf "value-%d" i))
  done;
  let stop = Atomic.make false in
  let corrupt = Atomic.make 0 in
  let reader seed =
    Domain.spawn (fun () ->
        let prng = Rp_workload.Prng.create ~seed in
        while not (Atomic.get stop) do
          let i = Rp_workload.Prng.below prng keyspace in
          match Memcached.Store.get store (Rp_workload.Keygen.string_key i) with
          | Some v ->
              (* Flags and data travel together; a mismatch is a torn read. *)
              let expected_prefix = "value-" in
              if
                String.length v.vdata < String.length expected_prefix
                || String.sub v.vdata 0 (String.length expected_prefix)
                   <> expected_prefix
              then Atomic.incr corrupt
          | None -> () (* deleted by the churn writer: legitimate miss *)
        done)
  in
  let writer =
    Domain.spawn (fun () ->
        let prng = Rp_workload.Prng.create ~seed:31 in
        while not (Atomic.get stop) do
          let i = Rp_workload.Prng.below prng keyspace in
          let key = Rp_workload.Keygen.string_key i in
          if Rp_workload.Prng.below prng 10 = 0 then
            ignore (Memcached.Store.delete store key)
          else
            ignore
              (Memcached.Store.set store ~key ~flags:i ~exptime:0
                 ~data:(Printf.sprintf "value-%d!" i))
        done)
  in
  let readers = List.init 2 (fun i -> reader (50 + i)) in
  Unix.sleepf duration;
  Atomic.set stop true;
  List.iter Domain.join readers;
  Domain.join writer;
  Alcotest.(check int) "no corrupt values" 0 (Atomic.get corrupt)

let () =
  Alcotest.run "concurrent"
    [
      ( "table torture (fixed size)",
        [
          Alcotest.test_case "rp" `Slow (torture rp_table ~with_resize:false);
          Alcotest.test_case "rp-qsbr" `Slow (torture qsbr_table ~with_resize:false);
          Alcotest.test_case "ddds" `Slow (torture ddds_table ~with_resize:false);
          Alcotest.test_case "rwlock" `Slow (torture rwlock_table ~with_resize:false);
          Alcotest.test_case "lock" `Slow (torture lock_table ~with_resize:false);
          Alcotest.test_case "xu" `Slow (torture xu_table ~with_resize:false);
        ] );
      ( "table torture (continuous resize)",
        [
          Alcotest.test_case "rp" `Slow (torture rp_table ~with_resize:true);
          Alcotest.test_case "rp-qsbr" `Slow (torture qsbr_table ~with_resize:true);
          Alcotest.test_case "ddds" `Slow (torture ddds_table ~with_resize:true);
          Alcotest.test_case "xu" `Slow (torture xu_table ~with_resize:true);
        ] );
      ( "rp specifics",
        [
          Alcotest.test_case "invariants after torture" `Slow
            test_rp_invariants_after_torture;
          Alcotest.test_case "move never leaves neither key" `Slow
            test_move_never_neither;
          Alcotest.test_case "replace is atomic" `Slow test_replace_is_atomic;
          Alcotest.test_case "shrink vs striped inserts" `Slow
            test_shrink_vs_striped_inserts;
        ] );
      ( "memcached store",
        [
          Alcotest.test_case "rp backend" `Slow (store_torture Memcached.Store.Rp);
          Alcotest.test_case "lock backend" `Slow
            (store_torture Memcached.Store.Lock);
          Alcotest.test_case "eviction races lazy splits" `Slow
            test_eviction_races_lazy_splits;
        ] );
    ]
