(* Benchmark harness: runner orchestration, statistics, series, reports. *)

let test_runner_counts_ops () =
  let outcome =
    Rp_harness.Runner.run ~duration:0.05
      ~workers:
        (Array.init 3 (fun _ ~stop ->
             Rp_harness.Runner.loop_until_stop ~stop ~f:(fun () -> ())))
      ()
  in
  Alcotest.(check int) "three workers" 3
    (Array.length outcome.Rp_harness.Runner.per_worker_ops);
  Array.iter
    (fun ops -> Alcotest.(check bool) "each made progress" true (ops > 0))
    outcome.Rp_harness.Runner.per_worker_ops;
  Alcotest.(check bool) "elapsed near duration" true
    (outcome.Rp_harness.Runner.elapsed >= 0.04);
  Alcotest.(check int) "total is sum"
    (Array.fold_left ( + ) 0 outcome.Rp_harness.Runner.per_worker_ops)
    (Rp_harness.Runner.total_ops outcome);
  Alcotest.(check bool) "throughput positive" true
    (Rp_harness.Runner.throughput outcome > 0.0)

let test_runner_rejects_empty () =
  Alcotest.check_raises "no workers" (Invalid_argument "Runner.run: no workers")
    (fun () -> ignore (Rp_harness.Runner.run ~duration:0.01 ~workers:[||] ()))

let test_loop_batched () =
  let stop = Atomic.make false in
  let calls = ref 0 in
  let counter =
    Domain.spawn (fun () ->
        Rp_harness.Runner.loop_batched ~stop ~batch:64 ~f:(fun () -> incr calls))
  in
  Unix.sleepf 0.02;
  Atomic.set stop true;
  let ops = Domain.join counter in
  Alcotest.(check int) "ops counted in batch units" 0 (ops mod 64);
  Alcotest.(check int) "calls match count" ops !calls;
  Alcotest.check_raises "batch < 1"
    (Invalid_argument "Runner.loop_batched: batch < 1") (fun () ->
      ignore (Rp_harness.Runner.loop_batched ~stop ~batch:0 ~f:(fun () -> ())))

let test_stats_basics () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Rp_harness.Stats.mean [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "mean empty" 0.0 (Rp_harness.Stats.mean [||]);
  Alcotest.(check (float 1e-9)) "median odd" 2.0
    (Rp_harness.Stats.median [| 3.0; 1.0; 2.0 |]);
  Alcotest.(check (float 1e-9)) "median even" 2.5
    (Rp_harness.Stats.median [| 4.0; 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "stddev" 1.0
    (Rp_harness.Stats.stddev [| 1.0; 2.0; 3.0 |]);
  Alcotest.(check (float 1e-9)) "stddev single" 0.0 (Rp_harness.Stats.stddev [| 5.0 |])

let test_histogram () =
  let h = Rp_harness.Stats.Histogram.create () in
  Alcotest.(check int) "empty" 0 (Rp_harness.Stats.Histogram.count h);
  Alcotest.(check (float 1e-9)) "empty percentile" 0.0
    (Rp_harness.Stats.Histogram.percentile h 99.0);
  List.iter (Rp_harness.Stats.Histogram.record h) [ 10.0; 20.0; 30.0; 1000.0 ];
  Alcotest.(check int) "count" 4 (Rp_harness.Stats.Histogram.count h);
  Alcotest.(check (float 1e-6)) "mean" 265.0 (Rp_harness.Stats.Histogram.mean h);
  (* p50 of {10,20,30,1000}: second sample (20 ns) lives in bucket [16,32). *)
  Alcotest.(check (float 1e-9)) "p50 upper bound" 32.0
    (Rp_harness.Stats.Histogram.percentile h 50.0);
  Alcotest.(check bool) "p100 covers max" true
    (Rp_harness.Stats.Histogram.percentile h 100.0 >= 1000.0)

let test_histogram_merge () =
  let a = Rp_harness.Stats.Histogram.create () in
  let b = Rp_harness.Stats.Histogram.create () in
  Rp_harness.Stats.Histogram.record a 10.0;
  Rp_harness.Stats.Histogram.record b 100.0;
  let m = Rp_harness.Stats.Histogram.merge a b in
  Alcotest.(check int) "merged count" 2 (Rp_harness.Stats.Histogram.count m);
  Alcotest.(check (float 1e-6)) "merged mean" 55.0 (Rp_harness.Stats.Histogram.mean m)

let test_series () =
  let s = Rp_harness.Series.make ~label:"x" ~points:[ (1, 10.0); (4, 40.0) ] in
  Alcotest.(check (option (float 1e-9))) "y_at hit" (Some 10.0)
    (Rp_harness.Series.y_at s 1);
  Alcotest.(check (option (float 1e-9))) "y_at miss" None (Rp_harness.Series.y_at s 2);
  let scaled = Rp_harness.Series.scale s 0.5 in
  Alcotest.(check (option (float 1e-9))) "scaled" (Some 20.0)
    (Rp_harness.Series.y_at scaled 4);
  let s2 = Rp_harness.Series.make ~label:"y" ~points:[ (2, 1.0); (4, 2.0) ] in
  Alcotest.(check (list int)) "xs union sorted" [ 1; 2; 4 ]
    (Rp_harness.Series.xs [ s; s2 ])

let test_csv () =
  let s1 = Rp_harness.Series.make ~label:"a" ~points:[ (1, 1.5); (2, 2.5) ] in
  let s2 = Rp_harness.Series.make ~label:"b" ~points:[ (1, 3.0) ] in
  let csv = Rp_harness.Report.csv_of_series ~x_label:"threads" [ s1; s2 ] in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check string) "header" "threads,a,b" (List.nth lines 0);
  Alcotest.(check bool) "row 1 has both" true
    (String.length (List.nth lines 1) > String.length "1,1.5");
  (* Missing point renders as an empty cell. *)
  let row2 = List.nth lines 2 in
  Alcotest.(check bool) "row 2 trailing empty cell" true
    (String.length row2 > 0 && row2.[String.length row2 - 1] = ',')

let test_write_csv_roundtrip () =
  let path = Filename.temp_file "rp_test" ".csv" in
  let s = Rp_harness.Series.make ~label:"t" ~points:[ (1, 9.0) ] in
  Rp_harness.Report.write_csv ~path ~x_label:"n" [ s ];
  let ic = open_in path in
  let header = input_line ic in
  let row = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header" "n,t" header;
  Alcotest.(check string) "row" "1,9.000000" row

let contains_substring haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let with_captured_stdout f =
  let path = Filename.temp_file "rp_capture" ".txt" in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let saved = Unix.dup Unix.stdout in
  flush stdout;
  Unix.dup2 fd Unix.stdout;
  let restore () =
    flush stdout;
    Unix.dup2 saved Unix.stdout;
    Unix.close saved;
    Unix.close fd
  in
  (match f () with
  | () -> restore ()
  | exception e ->
      restore ();
      raise e);
  let ic = open_in path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  contents

let test_print_table_alignment () =
  let out =
    with_captured_stdout (fun () ->
        Rp_harness.Report.print_table ~header:[ "name"; "value" ]
          ~rows:[ [ "alpha"; "1" ]; [ "b"; "22222" ] ])
  in
  let lines =
    String.split_on_char '\n' out |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "header + rule + 2 rows" 4 (List.length lines);
  (* All lines equally wide (column alignment). *)
  let widths = List.map String.length lines in
  Alcotest.(check bool) "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_print_series_table () =
  let s = Rp_harness.Series.make ~label:"rp" ~points:[ (1, 1.0); (16, 16.0) ] in
  let out =
    with_captured_stdout (fun () ->
        Rp_harness.Report.print_series_table ~unit_label:"Mops/s"
          ~x_label:"readers" [ s ])
  in
  Alcotest.(check bool) "mentions unit" true (contains_substring out "Mops/s")

let test_ascii_chart_renders () =
  let s = Rp_harness.Series.make ~label:"rp" ~points:[ (1, 1.0); (8, 8.0) ] in
  let out =
    with_captured_stdout (fun () ->
        Rp_harness.Report.print_ascii_chart ~title:"test chart" [ s ])
  in
  Alcotest.(check bool) "has title" true (contains_substring out "test chart");
  Alcotest.(check bool) "has legend" true (contains_substring out "* = rp")

let test_ascii_chart_empty () =
  let out =
    with_captured_stdout (fun () ->
        Rp_harness.Report.print_ascii_chart ~title:"empty" [])
  in
  Alcotest.(check bool) "handles no data" true (contains_substring out "(no data)")

(* --- trend gate --- *)

module Trend = Rp_harness.Trend

let server_report ~rps ~misses =
  Printf.sprintf
    {|{"benchmark": "server-pipelined-get",
       "runs": [
         {"label": "event-loop-w1", "rps": %d, "misses": %d},
         {"label": "threaded", "rps": 50000, "misses": 0}
       ]}|}
    rps misses

let server_baseline = Trend.parse (server_report ~rps:40000 ~misses:0)
let server_rules = Trend.rules_for "server-pipelined-get"

let test_trend_parse_flatten () =
  let json = Trend.parse {|{"a": 1, "b": {"c": 2.5}, "arr": [3, {"label": "x", "v": 4}], "s": "skip", "t": true}|} in
  let flat = Trend.flatten json in
  Alcotest.(check (option (float 0.))) "top-level" (Some 1.)
    (List.assoc_opt "a" flat);
  Alcotest.(check (option (float 0.))) "nested" (Some 2.5)
    (List.assoc_opt "b.c" flat);
  Alcotest.(check (option (float 0.))) "array index" (Some 3.)
    (List.assoc_opt "arr.0" flat);
  Alcotest.(check (option (float 0.))) "labelled element" (Some 4.)
    (List.assoc_opt "arr.x.v" flat);
  Alcotest.(check (option (float 0.))) "bool as 0/1" (Some 1.)
    (List.assoc_opt "t" flat);
  Alcotest.(check (option (float 0.))) "strings skipped" None
    (List.assoc_opt "s" flat);
  (match Trend.parse "{broken" with
  | exception Trend.Parse_error _ -> ()
  | _ -> Alcotest.fail "garbage accepted")

let test_trend_gate_passes_healthy () =
  let fresh = Trend.parse (server_report ~rps:120000 ~misses:0) in
  Alcotest.(check int) "healthy run passes" 0
    (List.length (Trend.gate ~rules:server_rules ~baseline:server_baseline ~fresh));
  (* 20% under the floor is within the 25% budget. *)
  let fresh = Trend.parse (server_report ~rps:32000 ~misses:0) in
  Alcotest.(check int) "noise-level dip passes" 0
    (List.length (Trend.gate ~rules:server_rules ~baseline:server_baseline ~fresh))

let test_trend_gate_fails_regression () =
  (* Doctored report: throughput collapsed well past 25% under baseline. *)
  let fresh = Trend.parse (server_report ~rps:4000 ~misses:0) in
  let failures =
    Trend.gate ~rules:server_rules ~baseline:server_baseline ~fresh
  in
  Alcotest.(check int) "regression caught" 1 (List.length failures);
  let f = List.hd failures in
  Alcotest.(check string) "right metric" "runs.event-loop-w1.rps" f.Trend.f_metric;
  Alcotest.(check bool) "report renders" true
    (String.length (Trend.report_failures failures) > 0)

let test_trend_gate_misses_exact_zero () =
  (* A single miss fails, however good the throughput. *)
  let fresh = Trend.parse (server_report ~rps:500000 ~misses:1) in
  let failures =
    Trend.gate ~rules:server_rules ~baseline:server_baseline ~fresh
  in
  Alcotest.(check int) "miss caught" 1 (List.length failures);
  Alcotest.(check string) "right metric" "runs.event-loop-w1.misses"
    (List.hd failures).Trend.f_metric

let test_trend_gate_missing_metric () =
  (* A gated metric vanishing from the fresh report is itself a failure. *)
  let fresh =
    Trend.parse
      {|{"benchmark": "server-pipelined-get",
         "runs": [{"label": "threaded", "rps": 50000, "misses": 0}]}|}
  in
  let failures =
    Trend.gate ~rules:server_rules ~baseline:server_baseline ~fresh
  in
  Alcotest.(check bool) "missing run caught" true
    (List.exists
       (fun f -> f.Trend.f_metric = "runs.event-loop-w1.rps")
       failures)

let test_trend_gate_lower_better_and_exact () =
  let baseline =
    Trend.parse {|{"benchmark": "persist", "snapshot_mb_per_s": 10,
                   "replay_ops_per_s": 40000, "get_p99_ns_snapshot_on": 60000}|}
  in
  let rules = Trend.rules_for "persist" in
  let fresh_ok =
    Trend.parse {|{"benchmark": "persist", "snapshot_mb_per_s": 30,
                   "replay_ops_per_s": 120000, "get_p99_ns_snapshot_on": 8000}|}
  in
  Alcotest.(check int) "healthy persist passes" 0
    (List.length (Trend.gate ~rules ~baseline ~fresh:fresh_ok));
  (* Doctored: tail latency blew through the ceiling. *)
  let fresh_slow =
    Trend.parse {|{"benchmark": "persist", "snapshot_mb_per_s": 30,
                   "replay_ops_per_s": 120000, "get_p99_ns_snapshot_on": 90000}|}
  in
  Alcotest.(check string) "tail regression caught" "get_p99_ns_snapshot_on"
    (List.hd (Trend.gate ~rules ~baseline ~fresh:fresh_slow)).Trend.f_metric;
  (* Exact rule: smoke's deterministic hit count must not change at all. *)
  let smoke_base =
    Trend.parse {|{"benchmark": "smoke", "lookup_hits": 8192,
                   "store": {"trace_spans_total": 80}}|}
  in
  let smoke_rules = Trend.rules_for "smoke" in
  let smoke_bad =
    Trend.parse {|{"benchmark": "smoke", "lookup_hits": 8191,
                   "store": {"trace_spans_total": 900}}|}
  in
  Alcotest.(check string) "hit-count drift caught" "lookup_hits"
    (List.hd (Trend.gate ~rules:smoke_rules ~baseline:smoke_base ~fresh:smoke_bad))
      .Trend.f_metric

let () =
  Alcotest.run "harness"
    [
      ( "runner",
        [
          Alcotest.test_case "counts ops" `Quick test_runner_counts_ops;
          Alcotest.test_case "rejects empty" `Quick test_runner_rejects_empty;
          Alcotest.test_case "loop_batched" `Quick test_loop_batched;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summary stats" `Quick test_stats_basics;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
        ] );
      ( "series",
        [
          Alcotest.test_case "series ops" `Quick test_series;
          Alcotest.test_case "csv rendering" `Quick test_csv;
          Alcotest.test_case "csv file round trip" `Quick test_write_csv_roundtrip;
        ] );
      ( "report",
        [
          Alcotest.test_case "table alignment" `Quick test_print_table_alignment;
          Alcotest.test_case "series table" `Quick test_print_series_table;
          Alcotest.test_case "ascii chart" `Quick test_ascii_chart_renders;
          Alcotest.test_case "ascii chart empty" `Quick test_ascii_chart_empty;
        ] );
      ( "trend",
        [
          Alcotest.test_case "parse + flatten" `Quick test_trend_parse_flatten;
          Alcotest.test_case "healthy run passes" `Quick
            test_trend_gate_passes_healthy;
          Alcotest.test_case "doctored regression fails" `Quick
            test_trend_gate_fails_regression;
          Alcotest.test_case "misses are exact-zero" `Quick
            test_trend_gate_misses_exact_zero;
          Alcotest.test_case "vanished metric fails" `Quick
            test_trend_gate_missing_metric;
          Alcotest.test_case "lower-better and exact rules" `Quick
            test_trend_gate_lower_better_and_exact;
        ] );
    ]
