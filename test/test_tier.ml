(* The tiered-storage plane, bottom-up: the cold segment store (append /
   read / rotation / live-byte accounting / failpoints / recovery), the
   store's demote-promote cycle with slab charge/refund round-trips, the
   iter read-through, compaction via the Tier glue, and the startup
   directory validation. *)

open Memcached

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let fresh_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "rp-tier-test-%d-%d" (Unix.getpid ()) !ctr)
    in
    rm_rf dir;
    Unix.mkdir dir 0o755;
    dir

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let open_cold ?segment_bytes ~dir ~max_bytes () =
  match Rp_tier.Cold_store.open_ ?segment_bytes ~dir ~max_bytes () with
  | Ok c -> c
  | Error e -> Alcotest.failf "cold open: %s" e

let append_ok cold key data =
  match Rp_tier.Cold_store.append cold ~key ~data with
  | Ok l -> l
  | Error `Full -> Alcotest.failf "append %s: full" key
  | Error (`Failed e) -> Alcotest.failf "append %s: %s" key e

(* --- cold segment store --- *)

let test_cold_roundtrip () =
  with_dir @@ fun dir ->
  let cold = open_cold ~dir ~max_bytes:(1 lsl 20) () in
  let locs =
    List.init 5 (fun i ->
        let key = Printf.sprintf "k%d" i in
        (key, String.make (50 + i) 'v', append_ok cold key (String.make (50 + i) 'v')))
  in
  List.iter
    (fun (key, data, loc) ->
      match Rp_tier.Cold_store.read cold loc with
      | Ok (k, d) ->
          Alcotest.(check string) "key" key k;
          Alcotest.(check string) "data" data d
      | Error _ -> Alcotest.failf "read %s failed" key)
    locs;
  Alcotest.(check bool) "bytes accounted" true (Rp_tier.Cold_store.total_bytes cold > 0);
  Alcotest.(check int) "all live"
    (Rp_tier.Cold_store.total_bytes cold)
    (Rp_tier.Cold_store.live_bytes cold);
  Rp_tier.Cold_store.close cold

let test_cold_rotation_and_drop () =
  with_dir @@ fun dir ->
  (* Tiny segments: a handful of ~100-byte records spans several files. *)
  let cold = open_cold ~segment_bytes:256 ~dir ~max_bytes:(1 lsl 20) () in
  let locs =
    List.init 12 (fun i ->
        append_ok cold (Printf.sprintf "k%d" i) (String.make 100 'x'))
  in
  let segs = Rp_tier.Cold_store.segment_count cold in
  Alcotest.(check bool) "rotated" true (segs > 1);
  (* Kill every record of the first (sealed) segment: the file must be
     unlinked on the spot and its locations come back Gone. *)
  let seg0 = (List.hd locs).Rp_tier.segment in
  let in_seg0, rest =
    List.partition (fun l -> l.Rp_tier.segment = seg0) locs
  in
  List.iter (fun l -> Rp_tier.Cold_store.mark_dead cold l) in_seg0;
  Alcotest.(check int) "segment dropped" (segs - 1)
    (Rp_tier.Cold_store.segment_count cold);
  (match Rp_tier.Cold_store.read cold (List.hd in_seg0) with
  | Error Rp_tier.Gone -> ()
  | Ok _ | Error Rp_tier.Torn -> Alcotest.fail "dropped segment still readable");
  (* Survivors unaffected. *)
  (match Rp_tier.Cold_store.read cold (List.hd rest) with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "live segment lost");
  Rp_tier.Cold_store.close cold

let test_cold_full () =
  with_dir @@ fun dir ->
  let cold = open_cold ~dir ~max_bytes:512 () in
  let rec fill i =
    if i > 64 then Alcotest.fail "budget never enforced"
    else
      match
        Rp_tier.Cold_store.append cold ~key:(Printf.sprintf "k%d" i)
          ~data:(String.make 100 'x')
      with
      | Ok _ -> fill (i + 1)
      | Error `Full -> ()
      | Error (`Failed e) -> Alcotest.failf "append failed: %s" e
  in
  fill 0;
  Alcotest.(check bool) "stayed under budget" true
    (Rp_tier.Cold_store.total_bytes cold <= 512 + 256);
  Rp_tier.Cold_store.close cold

let test_cold_failpoints () =
  with_dir @@ fun dir ->
  let cold = open_cold ~dir ~max_bytes:(1 lsl 20) () in
  Rp_fault.arm Rp_tier.append_site ~trigger:Rp_fault.Always ~action:Rp_fault.Raise;
  (match Rp_tier.Cold_store.append cold ~key:"k" ~data:"v" with
  | Error (`Failed _) -> ()
  | Ok _ -> Alcotest.fail "armed append succeeded"
  | Error `Full -> Alcotest.fail "armed append reported full");
  Rp_fault.disarm Rp_tier.append_site;
  (* The head was sealed on failure; the next append lands cleanly. *)
  let loc = append_ok cold "k" "v" in
  Rp_fault.arm Rp_tier.read_torn_site ~trigger:Rp_fault.Always
    ~action:Rp_fault.Raise;
  (match Rp_tier.Cold_store.read cold loc with
  | Error Rp_tier.Torn -> ()
  | Ok _ | Error Rp_tier.Gone -> Alcotest.fail "armed read not torn");
  Rp_fault.disarm Rp_tier.read_torn_site;
  (match Rp_tier.Cold_store.read cold loc with
  | Ok ("k", "v") -> ()
  | _ -> Alcotest.fail "read after disarm");
  Rp_tier.Cold_store.close cold

let test_cold_recovery () =
  with_dir @@ fun dir ->
  let cold = open_cold ~dir ~max_bytes:(1 lsl 20) () in
  let locs =
    List.init 4 (fun i ->
        (Printf.sprintf "k%d" i, append_ok cold (Printf.sprintf "k%d" i) "value"))
  in
  Rp_tier.Cold_store.close cold;
  (* Reopen: pre-recovery the old segments are readable but unknown. *)
  let cold = open_cold ~dir ~max_bytes:(1 lsl 20) () in
  (match Rp_tier.Cold_store.read cold (List.assoc "k1" locs) with
  | Ok ("k1", "value") -> ()
  | _ -> Alcotest.fail "pre-recovery read");
  (* Half the records are still referenced: live map rebuilt, nothing
     dropped. *)
  let live = [ "k0"; "k2" ] in
  let dropped =
    Rp_tier.Cold_store.finish_recovery cold ~is_live:(fun key _ ->
        List.mem key live)
  in
  Alcotest.(check int) "half-live segment kept" 0 dropped;
  Alcotest.(check bool) "live < total" true
    (Rp_tier.Cold_store.live_bytes cold < Rp_tier.Cold_store.total_bytes cold);
  Rp_tier.Cold_store.close cold;
  (* Reopen again with nothing referenced: the segment is dropped. *)
  let cold = open_cold ~dir ~max_bytes:(1 lsl 20) () in
  let dropped =
    Rp_tier.Cold_store.finish_recovery cold ~is_live:(fun _ _ -> false)
  in
  Alcotest.(check bool) "dead segment dropped" true (dropped >= 1);
  (match Rp_tier.Cold_store.read cold (List.assoc "k1" locs) with
  | Error Rp_tier.Gone -> ()
  | _ -> Alcotest.fail "dropped segment still readable");
  Rp_tier.Cold_store.close cold

let test_cold_compact_candidate () =
  with_dir @@ fun dir ->
  let cold = open_cold ~segment_bytes:256 ~dir ~max_bytes:(1 lsl 20) () in
  let locs =
    List.init 12 (fun i ->
        append_ok cold (Printf.sprintf "k%d" i) (String.make 100 'x'))
  in
  Alcotest.(check (option int)) "all live: no candidate" None
    (Rp_tier.Cold_store.compact_candidate cold ~min_dead_ratio:0.5);
  (* Kill most-but-not-all of the oldest segment so it cannot auto-drop,
     then it must become the candidate. The head never qualifies. *)
  let seg0 = (List.hd locs).Rp_tier.segment in
  let in_seg0 = List.filter (fun l -> l.Rp_tier.segment = seg0) locs in
  List.iteri
    (fun i l -> if i > 0 then Rp_tier.Cold_store.mark_dead cold l)
    in_seg0;
  (match Rp_tier.Cold_store.compact_candidate cold ~min_dead_ratio:0.4 with
  | Some g -> Alcotest.(check int) "oldest mostly-dead segment" seg0 g
  | None -> Alcotest.fail "no candidate");
  Alcotest.(check (option int)) "ratio above its dead share" None
    (Rp_tier.Cold_store.compact_candidate cold ~min_dead_ratio:0.99);
  Rp_tier.Cold_store.close cold

(* --- store demote / promote --- *)

(* Wire a raw Cold_store under a store, exactly as the Tier glue does but
   without the compactor domain, so tests control every step. *)
let attach_cold store cold =
  Store.set_tier store
    (Some
       {
         Store.th_demote =
           (fun key data ->
             match Rp_tier.Cold_store.append cold ~key ~data with
             | Ok l -> Some (l.Rp_tier.segment, l.Rp_tier.offset, l.Rp_tier.len)
             | Error _ -> None);
         th_read =
           (fun (segment, offset, len) ->
             match Rp_tier.Cold_store.read cold { segment; offset; len } with
             | Ok kv -> Ok kv
             | Error Rp_tier.Gone -> Error Store.Tier_gone
             | Error Rp_tier.Torn -> Error Store.Tier_torn);
         th_mark_dead =
           (fun (segment, offset, len) ->
             Rp_tier.Cold_store.mark_dead cold { segment; offset; len });
         th_admit = (fun () -> true);
       })

let make_tiered ?(max_bytes = 16 * 1024) dir =
  let store =
    Store.create ~backend:Store.Rp ~max_bytes ~initial_size:64 ()
  in
  let cold = open_cold ~dir ~max_bytes:(1 lsl 22) () in
  attach_cold store cold;
  (store, cold)

let key i = Printf.sprintf "key%03d" i
let payload i = Printf.sprintf "%03d:%s" i (String.make 1000 'v')

let fill store n =
  for i = 0 to n - 1 do
    match
      Store.set store ~key:(key i) ~flags:i ~exptime:0 ~data:(payload i)
    with
    | Store.Stored -> ()
    | _ -> Alcotest.failf "set %d" i
  done

let cold_keys store n =
  List.filter
    (fun i -> Store.tier_location store (key i) <> None)
    (List.init n Fun.id)

let test_store_demote_promote () =
  with_dir @@ fun dir ->
  let store, _cold = make_tiered dir in
  let n = 48 in
  fill store n;
  (* 48 KB of values against a 16 KB budget: the overflow demoted, not
     dropped — keys never leave the table. *)
  Alcotest.(check int) "every key still in the table" n (Store.items store);
  Alcotest.(check bool) "demotions happened" true (Store.tier_demotions store > 0);
  Alcotest.(check bool) "cold markers live" true (cold_keys store n <> []);
  (* Every key readable; flags ride the marker through the round-trip. *)
  for i = 0 to n - 1 do
    match Store.get store (key i) with
    | Some v ->
        Alcotest.(check string) "data" (payload i) v.Protocol.vdata;
        Alcotest.(check int) "flags" i v.Protocol.vflags
    | None -> Alcotest.failf "hard miss on %s" (key i)
  done;
  Alcotest.(check bool) "promotions happened" true
    (Store.tier_promotions store > 0)

let test_store_cold_overwrite_delete_flush () =
  with_dir @@ fun dir ->
  let store, cold = make_tiered dir in
  let n = 48 in
  fill store n;
  let pick l = match l with [] -> Alcotest.fail "nothing cold" | i :: _ -> i in
  (* Overwrite a cold key: the marker dies, the new value is hot. *)
  let a = pick (cold_keys store n) in
  let live0 = Rp_tier.Cold_store.live_bytes cold in
  (match Store.set store ~key:(key a) ~flags:0 ~exptime:0 ~data:"fresh" with
  | Store.Stored -> ()
  | _ -> Alcotest.fail "overwrite");
  Alcotest.(check (option (triple int int int))) "marker gone" None
    (Store.tier_location store (key a));
  Alcotest.(check bool) "overwrite refunded the frame" true
    (Rp_tier.Cold_store.live_bytes cold < live0);
  (* Delete a cold key: acked, gone, and its frame dead. *)
  let b = pick (cold_keys store n) in
  let live1 = Rp_tier.Cold_store.live_bytes cold in
  Alcotest.(check bool) "delete acked" true (Store.delete store (key b));
  Alcotest.(check (option string)) "deleted" None
    (Option.map (fun (v : Protocol.value) -> v.vdata) (Store.get store (key b)));
  Alcotest.(check bool) "delete refunded the frame" true
    (Rp_tier.Cold_store.live_bytes cold < live1);
  (* Flush: every frame dead. *)
  Store.flush_all store;
  Alcotest.(check int) "flushed" 0 (Store.items store);
  Alcotest.(check int) "no live cold bytes" 0 (Rp_tier.Cold_store.live_bytes cold)

(* The read-modify-write commands must operate on a demoted key's real
   value, not its marker's "": touch keeps the value, append/prepend
   concatenate against it, incr parses it. *)
let test_cold_mutations () =
  with_dir @@ fun dir ->
  let store, _cold = make_tiered dir in
  let n = 48 in
  fill store n;
  let pick l = match l with [] -> Alcotest.fail "nothing cold" | i :: _ -> i in
  (* touch: only the expiry changes; the value survives the round-trip. *)
  let a = pick (cold_keys store n) in
  Alcotest.(check bool) "touch acked" true
    (Store.touch store ~key:(key a) ~exptime:1000);
  (match Store.get store (key a) with
  | Some v ->
      Alcotest.(check string) "touch kept the cold value" (payload a)
        v.Protocol.vdata
  | None -> Alcotest.failf "touch lost %s" (key a));
  (* append: the suffix lands on the cold value, not on "". *)
  let b = pick (cold_keys store n) in
  (match Store.append store ~key:(key b) ~data:"+tail" with
  | Store.Stored -> ()
  | _ -> Alcotest.fail "append on cold key not stored");
  (match Store.get store (key b) with
  | Some v ->
      Alcotest.(check string) "append concatenated the cold value"
        (payload b ^ "+tail") v.Protocol.vdata
  | None -> Alcotest.failf "append lost %s" (key b));
  (* prepend, same shape. *)
  let c = pick (cold_keys store n) in
  (match Store.prepend store ~key:(key c) ~data:"head+" with
  | Store.Stored -> ()
  | _ -> Alcotest.fail "prepend on cold key not stored");
  (match Store.get store (key c) with
  | Some v ->
      Alcotest.(check string) "prepend concatenated the cold value"
        ("head+" ^ payload c) v.Protocol.vdata
  | None -> Alcotest.failf "prepend lost %s" (key c))

(* incr/decr on a demoted numeric key: values are numeric with blank
   padding (big enough to force demotion; [String.trim] strips it). *)
let test_cold_counter () =
  with_dir @@ fun dir ->
  let store, _cold = make_tiered dir in
  let n = 48 in
  for i = 0 to n - 1 do
    match
      Store.set store ~key:(key i) ~flags:0 ~exptime:0
        ~data:(string_of_int (100 + i) ^ String.make 1000 ' ')
    with
    | Store.Stored -> ()
    | _ -> Alcotest.failf "set %d" i
  done;
  let c =
    match cold_keys store n with [] -> Alcotest.fail "nothing cold" | i :: _ -> i
  in
  (match Store.incr store (key c) 1 with
  | Store.Cvalue v -> Alcotest.(check int) "incr on cold value" (101 + c) v
  | Store.Cnon_numeric -> Alcotest.fail "cold counter read as non-numeric"
  | Store.Cnotfound -> Alcotest.fail "cold counter not found");
  match Store.get store (key c) with
  | Some v ->
      Alcotest.(check string) "stored the produced value"
        (string_of_int (101 + c)) v.Protocol.vdata
  | None -> Alcotest.fail "counter lost after incr"

(* Slab accounting across the demote / promote cycle: [bytes] charges
   hot-resident values only, and a promote / delete pair round-trips the
   charge exactly. *)
let test_slab_accounting () =
  with_dir @@ fun dir ->
  let budget = 32 * 1024 in
  let store, _cold = make_tiered ~max_bytes:budget dir in
  let n = 48 in
  fill store n;
  ignore (Store.evict_to_budget store);
  let full_set = n * 1000 in
  Alcotest.(check bool) "bytes under budget after the wave" true
    (Store.bytes store <= budget);
  Alcotest.(check bool) "markers not charged as values" true
    (Store.bytes store < full_set);
  Alcotest.(check bool) "fragmentation sane after the wave" true
    (* allocated/requested - 1: the marker-heavy population must not
       blow up chunk overhead. *)
    (let f = Store.fragmentation store in
     f >= 0.0 && f < 1.0);
  (* Open headroom so a promote cannot trigger a counter-demotion, then
     round-trip one key: promote charges its chunk, delete refunds it. *)
  let hot =
    List.filter
      (fun i -> Store.tier_location store (key i) = None)
      (List.init n Fun.id)
  in
  List.iteri (fun j i -> if j < 12 then ignore (Store.delete store (key i))) hot;
  let c =
    match cold_keys store n with [] -> Alcotest.fail "nothing cold" | i :: _ -> i
  in
  let before = Store.bytes store in
  (match Store.get store (key c) with
  | Some v -> Alcotest.(check string) "promoted data" (payload c) v.Protocol.vdata
  | None -> Alcotest.fail "cold key unreadable");
  Alcotest.(check (option (triple int int int))) "now hot" None
    (Store.tier_location store (key c));
  let after = Store.bytes store in
  Alcotest.(check bool) "promote charged the chunk" true (after > before);
  Alcotest.(check bool) "charge is one chunk, not a copy storm" true
    (after - before < 2048);
  ignore (Store.delete store (key c));
  (* The delete refunds the promoted chunk AND the marker's small chunk
     that was part of [before]: bytes lands just under the start point. *)
  let diff = before - Store.bytes store in
  Alcotest.(check bool) "delete refunded chunk and marker" true
    (diff > 0 && diff < 256)

let test_get_many_mixed () =
  with_dir @@ fun dir ->
  let store, _cold = make_tiered dir in
  let n = 48 in
  fill store n;
  let c =
    match cold_keys store n with [] -> Alcotest.fail "nothing cold" | i :: _ -> i
  in
  let h =
    match
      List.filter
        (fun i -> Store.tier_location store (key i) = None)
        (List.init n Fun.id)
    with
    | [] -> Alcotest.fail "nothing hot"
    | i :: _ -> i
  in
  let vs =
    Store.get_many store ~with_cas:true [ key h; "absent"; key c ]
  in
  (match vs with
  | [ vh; vc ] ->
      Alcotest.(check string) "hot first, in request order" (key h) vh.Protocol.vkey;
      Alcotest.(check string) "hot data" (payload h) vh.Protocol.vdata;
      Alcotest.(check string) "cold resolved" (key c) vc.Protocol.vkey;
      Alcotest.(check string) "cold data" (payload c) vc.Protocol.vdata;
      Alcotest.(check bool) "cas present" true (vc.Protocol.vcas <> None)
  | vs -> Alcotest.failf "expected 2 values, got %d" (List.length vs));
  Alcotest.(check (option (triple int int int))) "multiget promoted it" None
    (Store.tier_location store (key c))

let test_iter_read_through () =
  with_dir @@ fun dir ->
  let store, _cold = make_tiered dir in
  let n = 48 in
  fill store n;
  Alcotest.(check bool) "some keys are cold" true (cold_keys store n <> []);
  let seen = Hashtbl.create 64 in
  ignore
    (Store.iter_items store ~f:(fun k (item : Item.t) ->
         Hashtbl.replace seen k item.Item.data));
  (* The walk (what snapshots consume) must surface real values for cold
     items, not markers. *)
  for i = 0 to n - 1 do
    match Hashtbl.find_opt seen (key i) with
    | Some data -> Alcotest.(check string) "iter data" (payload i) data
    | None -> Alcotest.failf "iter missed %s" (key i)
  done

(* --- the Tier glue: compaction, instruments, stats --- *)

let test_tier_compaction () =
  with_dir @@ fun dir ->
  let tier_dir = Filename.concat dir "tier" in
  let store =
    Store.create ~backend:Store.Rp ~max_bytes:(16 * 1024) ~initial_size:64 ()
  in
  let tier =
    match
      Tier.attach ~min_dead_ratio:0.3 ~compact_interval:3600.
        ~segment_bytes:4096 ~dir:tier_dir ~max_mb:4 store
    with
    | Ok t -> t
    | Error e -> Alcotest.failf "tier attach: %s" e
  in
  Fun.protect ~finally:(fun () -> Tier.stop tier; rm_rf tier_dir)
  @@ fun () ->
  let n = 48 in
  fill store n;
  (* Punch holes: delete two thirds of the demoted keys, leaving sealed
     segments mostly dead but never empty enough to auto-drop. *)
  let cold0 = cold_keys store n in
  List.iteri (fun j i -> if j mod 3 > 0 then ignore (Store.delete store (key i))) cold0;
  let survivors = List.filteri (fun j _ -> j mod 3 = 0) cold0 in
  let compacted = ref false in
  for _ = 1 to 8 do
    if Tier.compact_once tier then compacted := true
  done;
  Alcotest.(check bool) "a segment was compacted" true !compacted;
  Alcotest.(check bool) "compaction counted" true (Tier.compactions tier > 0);
  (* Relocated records still resolve through the fresh markers. *)
  List.iter
    (fun i ->
      match Store.get store (key i) with
      | Some v -> Alcotest.(check string) "survivor data" (payload i) v.Protocol.vdata
      | None -> Alcotest.failf "survivor %s lost by compaction" (key i))
    survivors;
  (* The stats section is live while attached. *)
  let stats = Store.tier_stats store in
  Alcotest.(check (option string)) "mode" (Some "demote")
    (List.assoc_opt "tier_mode" stats);
  Alcotest.(check bool) "demotion counter exported" true
    (List.mem_assoc "tier_demotions_total" stats)

let test_tier_stats_disabled () =
  let store = Store.create ~backend:Store.Rp () in
  Alcotest.(check (option string)) "disabled marker" (Some "0")
    (List.assoc_opt "tier_enabled" (Store.tier_stats store))

(* --- startup directory validation --- *)

let test_dircheck () =
  with_dir @@ fun dir ->
  (* Missing nested path: created. *)
  let nested = Filename.concat dir "a" in
  (match Dircheck.validate ~flag:"--tier-dir" nested with
  | Ok () -> ()
  | Error e -> Alcotest.failf "nested create refused: %s" e);
  Alcotest.(check bool) "created" true (Sys.is_directory nested);
  (* Leftover probe files are cleaned up. *)
  Alcotest.(check (array string)) "no droppings" [||] (Sys.readdir nested);
  Unix.rmdir nested;
  (* Path is a regular file: refused, message names the flag. *)
  let file = Filename.concat dir "plain" in
  let oc = open_out file in
  close_out oc;
  (match Dircheck.validate ~flag:"--data-dir" file with
  | Error e ->
      Alcotest.(check bool) "names the flag" true
        (String.length e >= 10 && String.sub e 0 10 = "--data-dir")
  | Ok () -> Alcotest.fail "regular file accepted");
  (* Parent is a regular file: creation fails cleanly. *)
  (match Dircheck.validate ~flag:"--tier-dir" (Filename.concat file "sub") with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "file/sub accepted")

let () =
  Alcotest.run "tier"
    [
      ( "cold_store",
        [
          Alcotest.test_case "roundtrip" `Quick test_cold_roundtrip;
          Alcotest.test_case "rotation_and_drop" `Quick test_cold_rotation_and_drop;
          Alcotest.test_case "full" `Quick test_cold_full;
          Alcotest.test_case "failpoints" `Quick test_cold_failpoints;
          Alcotest.test_case "recovery" `Quick test_cold_recovery;
          Alcotest.test_case "compact_candidate" `Quick test_cold_compact_candidate;
        ] );
      ( "store",
        [
          Alcotest.test_case "demote_promote" `Quick test_store_demote_promote;
          Alcotest.test_case "cold_overwrite_delete_flush" `Quick
            test_store_cold_overwrite_delete_flush;
          Alcotest.test_case "cold_mutations" `Quick test_cold_mutations;
          Alcotest.test_case "cold_counter" `Quick test_cold_counter;
          Alcotest.test_case "slab_accounting" `Quick test_slab_accounting;
          Alcotest.test_case "get_many_mixed" `Quick test_get_many_mixed;
          Alcotest.test_case "iter_read_through" `Quick test_iter_read_through;
        ] );
      ( "tier",
        [
          Alcotest.test_case "compaction" `Quick test_tier_compaction;
          Alcotest.test_case "stats_disabled" `Quick test_tier_stats_disabled;
        ] );
      ( "dircheck", [ Alcotest.test_case "validate" `Quick test_dircheck ] );
    ]
