(* Store semantics, exercised identically on both backends with an injected
   clock: get/set/add/replace/cas, append/prepend, counters, expiry,
   eviction (exact LRU vs CLOCK second chance), flush, stats. *)

open Memcached

let backends = [ ("lock", Store.Lock); ("rp", Store.Rp) ]

(* A controllable clock. *)
let make_store ?(max_bytes = 1 lsl 30) ?rcu_mode backend =
  let now = ref 1_000_000_000.0 in
  let store =
    Store.create ~backend ?rcu_mode ~max_bytes ~initial_size:64
      ~clock:(fun () -> !now) ()
  in
  (store, now)

let set_ok store key data =
  match Store.set store ~key ~flags:0 ~exptime:0 ~data with
  | Store.Stored -> ()
  | _ -> Alcotest.failf "set %s failed" key

let get_data store key =
  Option.map (fun (v : Protocol.value) -> v.vdata) (Store.get store key)

let test_get_set backend () =
  let store, _ = make_store backend in
  Alcotest.(check (option string)) "miss on empty" None (get_data store "k");
  set_ok store "k" "v1";
  Alcotest.(check (option string)) "hit" (Some "v1") (get_data store "k");
  set_ok store "k" "v2";
  Alcotest.(check (option string)) "overwrite" (Some "v2") (get_data store "k");
  Alcotest.(check int) "one item" 1 (Store.items store)

let test_flags_roundtrip backend () =
  let store, _ = make_store backend in
  ignore (Store.set store ~key:"k" ~flags:1234 ~exptime:0 ~data:"v");
  match Store.get store "k" with
  | Some v -> Alcotest.(check int) "flags preserved" 1234 v.vflags
  | None -> Alcotest.fail "missing"

let test_add_replace backend () =
  let store, _ = make_store backend in
  Alcotest.(check bool) "add to empty stores" true
    (Store.add store ~key:"k" ~flags:0 ~exptime:0 ~data:"a" = Store.Stored);
  Alcotest.(check bool) "add to existing refuses" true
    (Store.add store ~key:"k" ~flags:0 ~exptime:0 ~data:"b" = Store.Not_stored);
  Alcotest.(check (option string)) "value untouched" (Some "a") (get_data store "k");
  Alcotest.(check bool) "replace existing stores" true
    (Store.replace store ~key:"k" ~flags:0 ~exptime:0 ~data:"c" = Store.Stored);
  Alcotest.(check bool) "replace absent refuses" true
    (Store.replace store ~key:"nope" ~flags:0 ~exptime:0 ~data:"d"
    = Store.Not_stored)

let test_cas backend () =
  let store, _ = make_store backend in
  set_ok store "k" "v";
  let unique =
    match Store.get_many store ~with_cas:true [ "k" ] with
    | [ { vcas = Some c; _ } ] -> c
    | _ -> Alcotest.fail "gets lost cas"
  in
  Alcotest.(check bool) "cas with stale unique" true
    (Store.cas store ~key:"k" ~flags:0 ~exptime:0 ~data:"x" ~unique:(unique + 1)
    = Store.Exists);
  Alcotest.(check bool) "cas with right unique" true
    (Store.cas store ~key:"k" ~flags:0 ~exptime:0 ~data:"y" ~unique = Store.Stored);
  Alcotest.(check (option string)) "cas applied" (Some "y") (get_data store "k");
  Alcotest.(check bool) "cas absent key" true
    (Store.cas store ~key:"ghost" ~flags:0 ~exptime:0 ~data:"z" ~unique
    = Store.Not_found)

let test_append_prepend backend () =
  let store, _ = make_store backend in
  Alcotest.(check bool) "append absent refuses" true
    (Store.append store ~key:"k" ~data:"x" = Store.Not_stored);
  set_ok store "k" "mid";
  Alcotest.(check bool) "append" true (Store.append store ~key:"k" ~data:"post" = Store.Stored);
  Alcotest.(check bool) "prepend" true (Store.prepend store ~key:"k" ~data:"pre" = Store.Stored);
  Alcotest.(check (option string)) "concatenated" (Some "premidpost")
    (get_data store "k")

let test_delete backend () =
  let store, _ = make_store backend in
  set_ok store "k" "v";
  Alcotest.(check bool) "delete present" true (Store.delete store "k");
  Alcotest.(check bool) "delete absent" false (Store.delete store "k");
  Alcotest.(check (option string)) "gone" None (get_data store "k");
  Alcotest.(check int) "empty" 0 (Store.items store)

let test_counters backend () =
  let store, _ = make_store backend in
  set_ok store "c" "10";
  Alcotest.(check bool) "incr" true (Store.incr store "c" 5 = Store.Cvalue 15);
  Alcotest.(check bool) "decr" true (Store.decr store "c" 3 = Store.Cvalue 12);
  Alcotest.(check bool) "decr saturates at 0" true
    (Store.decr store "c" 100 = Store.Cvalue 0);
  Alcotest.(check (option string)) "stored as string" (Some "0") (get_data store "c");
  Alcotest.(check bool) "incr absent" true (Store.incr store "ghost" 1 = Store.Cnotfound);
  set_ok store "s" "not-a-number";
  Alcotest.(check bool) "incr non-numeric" true
    (Store.incr store "s" 1 = Store.Cnon_numeric)

let test_expiry backend () =
  let store, now = make_store backend in
  (* Relative expiry: 60 seconds. *)
  ignore (Store.set store ~key:"k" ~flags:0 ~exptime:60 ~data:"v");
  Alcotest.(check (option string)) "alive" (Some "v") (get_data store "k");
  now := !now +. 59.0;
  Alcotest.(check (option string)) "still alive at 59s" (Some "v") (get_data store "k");
  now := !now +. 2.0;
  Alcotest.(check (option string)) "expired at 61s" None (get_data store "k");
  (* The expired item must eventually leave the store (lazy deletion). *)
  Alcotest.(check int) "reaped" 0 (Store.items store)

let test_expiry_absolute backend () =
  let store, now = make_store backend in
  (* Values beyond 30 days are absolute Unix timestamps. *)
  let absolute = int_of_float !now + 100 in
  ignore (Store.set store ~key:"k" ~flags:0 ~exptime:absolute ~data:"v");
  Alcotest.(check (option string)) "alive" (Some "v") (get_data store "k");
  now := float_of_int (absolute + 1);
  Alcotest.(check (option string)) "expired at absolute time" None
    (get_data store "k")

let test_expired_key_is_storable backend () =
  let store, now = make_store backend in
  ignore (Store.set store ~key:"k" ~flags:0 ~exptime:10 ~data:"old");
  now := !now +. 11.0;
  (* add treats the expired binding as absent. *)
  Alcotest.(check bool) "add over expired" true
    (Store.add store ~key:"k" ~flags:0 ~exptime:0 ~data:"new" = Store.Stored);
  Alcotest.(check (option string)) "new value" (Some "new") (get_data store "k")

let test_touch backend () =
  let store, now = make_store backend in
  ignore (Store.set store ~key:"k" ~flags:7 ~exptime:10 ~data:"v");
  Alcotest.(check bool) "touch extends" true (Store.touch store ~key:"k" ~exptime:100);
  now := !now +. 50.0;
  Alcotest.(check (option string)) "alive past old expiry" (Some "v")
    (get_data store "k");
  Alcotest.(check bool) "touch absent" false
    (Store.touch store ~key:"ghost" ~exptime:100)

let test_flush_all backend () =
  let store, _ = make_store backend in
  for i = 0 to 9 do
    set_ok store (Printf.sprintf "k%d" i) "v"
  done;
  Store.flush_all store;
  Alcotest.(check int) "emptied" 0 (Store.items store);
  Alcotest.(check int) "bytes zeroed" 0 (Store.bytes store);
  Alcotest.(check (option string)) "all gone" None (get_data store "k3")

(* Eviction budgets are in slab-chunk bytes, like stock memcached: compute
   the chunk an item of this size lands in. *)
let chunk_for item_size =
  let slab = Slab.create () in
  match Slab.class_of_size slab item_size with
  | Some cls -> Slab.chunk_size_of slab cls
  | None -> Alcotest.fail "item larger than any slab class"

let test_eviction_on_budget backend () =
  (* Budget fits ~8 items of this size; inserting 50 must evict, never
     grow past budget, and keep the most recent key resident. *)
  let item_size = chunk_for (3 + 100 + Item.overhead_bytes) in
  let store, _ = make_store ~max_bytes:(8 * item_size) backend in
  for i = 0 to 49 do
    ignore
      (Store.set store
         ~key:(Printf.sprintf "k%02d" i)
         ~flags:0 ~exptime:0 ~data:(String.make 100 'x'))
  done;
  Alcotest.(check bool) "evictions happened" true (Store.evictions store > 0);
  Alcotest.(check bool) "within budget" true (Store.bytes store <= 8 * item_size);
  Alcotest.(check (option string)) "newest survives"
    (Some (String.make 100 'x'))
    (get_data store "k49")

let test_lock_eviction_is_lru () =
  (* Exact LRU: with budget for 4 items, GETting an old key protects it. *)
  let item_size = chunk_for (2 + 10 + Item.overhead_bytes) in
  let store, _ = make_store ~max_bytes:(4 * item_size) Store.Lock in
  List.iter (fun k -> set_ok store k (String.make 10 'v')) [ "k0"; "k1"; "k2"; "k3" ];
  (* Bump k0 so k1 becomes the LRU victim. *)
  ignore (Store.get store "k0");
  set_ok store "k4" (String.make 10 'v');
  Alcotest.(check (option string)) "bumped key survives"
    (Some (String.make 10 'v'))
    (get_data store "k0");
  Alcotest.(check (option string)) "LRU victim evicted" None (get_data store "k1")

let test_rp_eviction_second_chance () =
  (* CLOCK approximation: a key touched since enqueue gets a second chance. *)
  let item_size = chunk_for (2 + 10 + Item.overhead_bytes) in
  let store, now = make_store ~max_bytes:(4 * item_size) Store.Rp in
  List.iter (fun k -> set_ok store k (String.make 10 'v')) [ "k0"; "k1"; "k2"; "k3" ];
  now := !now +. 1.0;
  ignore (Store.get store "k0");
  set_ok store "k4" (String.make 10 'v');
  Alcotest.(check (option string)) "recently used key survives"
    (Some (String.make 10 'v'))
    (get_data store "k0");
  Alcotest.(check bool) "something was evicted" true (Store.evictions store > 0)

let stat store key =
  match List.assoc_opt key (Store.stats store) with
  | Some v -> int_of_string v
  | None -> Alcotest.failf "missing stat %s" key

let test_clock_budget_all_hot () =
  (* Regression: when every resident key is hot, each sweep's second
     chances are bounded by the queue length at sweep start, so eviction
     degrades to FIFO instead of requeueing forever. *)
  let item_size = chunk_for (2 + 10 + Item.overhead_bytes) in
  let store, now = make_store ~max_bytes:(4 * item_size) Store.Rp in
  List.iter (fun k -> set_ok store k (String.make 10 'v')) [ "k0"; "k1"; "k2"; "k3" ];
  now := !now +. 1.0;
  List.iter (fun k -> ignore (Store.get store k)) [ "k0"; "k1"; "k2"; "k3" ];
  set_ok store "k4" (String.make 10 'v');
  Alcotest.(check bool) "eviction made room" true (Store.evictions store > 0);
  Alcotest.(check bool) "within budget" true (Store.bytes store <= 4 * item_size);
  Alcotest.(check bool) "second chances were granted" true
    (stat store "clock_second_chances" > 0);
  Alcotest.(check bool) "budget bounds the chances" true
    (stat store "clock_second_chances" <= 5);
  (* The hot residents kept their seats; the one cold key (k4, never
     touched since insert) was the FIFO victim once the chances ran out. *)
  List.iter
    (fun k ->
      Alcotest.(check (option string)) (k ^ " kept by its second chance")
        (Some (String.make 10 'v'))
        (get_data store k))
    [ "k0"; "k1"; "k2"; "k3" ];
  (* The sweep-latency histogram saw the all-hot sweep — the worst case
     it exists to expose (every resident requeued before the evict). *)
  Alcotest.(check bool) "eviction_sweep_us populated" true
    (stat store "eviction_sweep_us_count" > 0);
  Alcotest.(check bool) "sweep latency non-negative" true
    (stat store "eviction_sweep_us_sum" >= 0)

(* Qsbr-mode coverage: the expiry and eviction slow paths run locked
   update-side code (synchronize included) from the mutating caller, which
   under QSBR is itself a registered reader — the single-threaded tests
   would hang on any missed quiescent state. *)

let test_qsbr_expiry () =
  let store, now = make_store ~rcu_mode:Store.Qsbr Store.Rp in
  Alcotest.(check bool) "qsbr mode" true (Store.rcu_mode store = Store.Qsbr);
  ignore (Store.set store ~key:"k" ~flags:0 ~exptime:60 ~data:"v");
  now := !now +. 61.0;
  Alcotest.(check (option string)) "expired" None (get_data store "k");
  Alcotest.(check int) "reaped" 0 (Store.items store);
  Alcotest.(check bool) "expired counter moved" true (stat store "expired" > 0);
  Store.reader_offline store

let test_qsbr_eviction () =
  let item_size = chunk_for (3 + 100 + Item.overhead_bytes) in
  let store, _ = make_store ~rcu_mode:Store.Qsbr ~max_bytes:(8 * item_size) Store.Rp in
  for i = 0 to 49 do
    ignore
      (Store.set store
         ~key:(Printf.sprintf "k%02d" i)
         ~flags:0 ~exptime:0 ~data:(String.make 100 'x'))
  done;
  Alcotest.(check bool) "evictions happened" true (Store.evictions store > 0);
  Alcotest.(check bool) "eviction counter in stats" true (stat store "evictions" > 0);
  Alcotest.(check bool) "within budget" true (Store.bytes store <= 8 * item_size);
  Alcotest.(check (option string)) "newest survives"
    (Some (String.make 100 'x'))
    (get_data store "k49");
  Store.reader_offline store

(* The memcached 30-day rule, pinned at the boundary: REALTIME_MAXDELTA
   seconds is still a relative offset, one more is an absolute Unix
   timestamp (which, in 1970 terms, is long past). *)
let realtime_maxdelta = 30 * 24 * 60 * 60

let test_exptime_threshold backend () =
  let store, now = make_store backend in
  ignore
    (Store.set store ~key:"rel" ~flags:0 ~exptime:realtime_maxdelta ~data:"v");
  ignore
    (Store.set store ~key:"abs" ~flags:0 ~exptime:(realtime_maxdelta + 1) ~data:"v");
  Alcotest.(check (option string)) "30d is relative: alive" (Some "v")
    (get_data store "rel");
  Alcotest.(check (option string)) "30d+1s is absolute: long expired" None
    (get_data store "abs");
  now := !now +. float_of_int realtime_maxdelta +. 1.0;
  Alcotest.(check (option string)) "relative deadline enforced" None
    (get_data store "rel")

let test_exptime_logged_absolute backend () =
  (* Replay determinism: the persist hook must see expiry as the absolute
     Unix seconds computed once at op time, never a relative offset. *)
  let store, now = make_store backend in
  let last = ref None in
  Store.set_persist_hook store (Some (fun r -> last := Some r));
  let logged_exptime exptime =
    ignore (Store.set store ~key:"k" ~flags:0 ~exptime ~data:"v");
    match !last with
    | Some (Rp_persist.Record.Set { exptime = e; _ }) -> e
    | _ -> Alcotest.fail "set not logged"
  in
  Alcotest.(check (float 0.)) "0 stays 0 (never expires)" 0. (logged_exptime 0);
  Alcotest.(check (float 0.)) "relative becomes now + offset" (!now +. 60.)
    (logged_exptime 60);
  Alcotest.(check (float 0.)) "boundary is still relative"
    (!now +. float_of_int realtime_maxdelta)
    (logged_exptime realtime_maxdelta);
  Alcotest.(check (float 0.)) "past the boundary is absolute"
    (float_of_int (realtime_maxdelta + 1))
    (logged_exptime (realtime_maxdelta + 1));
  Alcotest.(check bool) "negative is expired, not 'never'" true
    (let e = logged_exptime (-1) in
     e > 0. && e < 1.);
  Store.set_persist_hook store None

let test_stats backend () =
  let store, _ = make_store backend in
  set_ok store "k" "v";
  ignore (Store.get store "k");
  ignore (Store.get store "ghost");
  let stats = Store.stats store in
  let get key = List.assoc key stats in
  Alcotest.(check string) "hits" "1" (get "get_hits");
  Alcotest.(check string) "misses" "1" (get "get_misses");
  Alcotest.(check string) "curr_items" "1" (get "curr_items");
  Alcotest.(check string) "backend name"
    (match backend with Store.Lock -> "lock" | Store.Rp -> "rp")
    (get "backend");
  Alcotest.(check bool) "bytes positive" true (int_of_string (get "bytes") > 0)

let test_get_many backend () =
  let store, _ = make_store backend in
  set_ok store "a" "1";
  set_ok store "b" "2";
  let values = Store.get_many store [ "a"; "ghost"; "b" ] in
  Alcotest.(check (list (pair string string)))
    "present keys in order"
    [ ("a", "1"); ("b", "2") ]
    (List.map (fun (v : Protocol.value) -> (v.vkey, v.vdata)) values)

(* Model-based: both backends against Hashtbl (no expiry, no eviction). *)
let model_property name backend =
  QCheck.Test.make
    ~name:(name ^ " store matches model")
    ~count:100
    QCheck.(
      list_of_size Gen.(int_bound 60)
        (triple (int_bound 3) (int_bound 15) (string_of_size Gen.(int_bound 20))))
    (fun ops ->
      let store, _ = make_store backend in
      let model : (string, string) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (kind, k, data) ->
          let key = Printf.sprintf "key%d" k in
          match kind with
          | 0 ->
              ignore (Store.set store ~key ~flags:0 ~exptime:0 ~data);
              Hashtbl.replace model key data
          | 1 ->
              let a = Store.delete store key in
              let b = Hashtbl.mem model key in
              Hashtbl.remove model key;
              if a <> b then QCheck.Test.fail_reportf "delete %s: %b vs %b" key a b
          | 2 ->
              if Store.add store ~key ~flags:0 ~exptime:0 ~data = Store.Stored
              then
                if Hashtbl.mem model key then
                  QCheck.Test.fail_reportf "add clobbered %s" key
                else Hashtbl.replace model key data
          | _ ->
              let got = get_data store key in
              let want = Hashtbl.find_opt model key in
              if got <> want then QCheck.Test.fail_reportf "get %s mismatch" key)
        ops;
      Store.items store = Hashtbl.length model)

let () =
  let per_backend test =
    List.map (fun (name, b) -> Alcotest.test_case name `Quick (test b)) backends
  in
  Alcotest.run "store"
    [
      ("get/set", per_backend test_get_set);
      ("flags", per_backend test_flags_roundtrip);
      ("add/replace", per_backend test_add_replace);
      ("cas", per_backend test_cas);
      ("append/prepend", per_backend test_append_prepend);
      ("delete", per_backend test_delete);
      ("counters", per_backend test_counters);
      ("expiry", per_backend test_expiry);
      ("absolute expiry", per_backend test_expiry_absolute);
      ("expired storable", per_backend test_expired_key_is_storable);
      ("touch", per_backend test_touch);
      ("flush_all", per_backend test_flush_all);
      ("eviction budget", per_backend test_eviction_on_budget);
      ( "eviction policy",
        [
          Alcotest.test_case "lock backend exact LRU" `Quick test_lock_eviction_is_lru;
          Alcotest.test_case "rp backend second chance" `Quick
            test_rp_eviction_second_chance;
          Alcotest.test_case "second chances bounded per sweep" `Quick
            test_clock_budget_all_hot;
        ] );
      ( "qsbr mode",
        [
          Alcotest.test_case "expiry" `Quick test_qsbr_expiry;
          Alcotest.test_case "eviction" `Quick test_qsbr_eviction;
        ] );
      ("exptime threshold", per_backend test_exptime_threshold);
      ("exptime logged absolute", per_backend test_exptime_logged_absolute);
      ("stats", per_backend test_stats);
      ("get_many", per_backend test_get_many);
      ( "model",
        List.map (fun (n, b) -> QCheck_alcotest.to_alcotest (model_property n b)) backends
      );
    ]
