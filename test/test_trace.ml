(* The flight recorder: concurrent emission safety, sampler determinism,
   tail-trigger retention, Perfetto export schema, end-to-end span
   coverage across all three planes, and the fully-sampled overhead
   guard. *)

module Trend = Rp_harness.Trend

(* --- helpers ----------------------------------------------------------- *)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let fresh_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "rp-trace-test-%d-%d" (Unix.getpid ()) !ctr)
    in
    rm_rf dir;
    Unix.mkdir dir 0o755;
    dir

(* Every test mutates the process-global recorder; bracket it so a
   failure in one test cannot poison the next. *)
let with_recorder ?(sample = 1024) ?(slow_ms = 100.) f =
  Rp_trace.reset ();
  Rp_trace.reset_sampler ();
  Rp_trace.configure ~sample ~slow_ms ();
  Fun.protect
    ~finally:(fun () ->
      Rp_trace.set_enabled true;
      Rp_trace.configure ~sample:1024 ~slow_ms:100. ();
      Rp_trace.reset ();
      Rp_trace.reset_sampler ())
    f

let stat_int key =
  int_of_string (List.assoc key (Rp_trace.stats_kv ()))

let has_name events n = List.exists (fun (e : Rp_trace.event) -> e.name = n) events

(* --- concurrent multi-domain emission ---------------------------------- *)

(* Four domains hammer their own rings past wrap-around; after join the
   snapshot must decode with zero torn records (each surviving slot cell
   was fully overwritten, never half-written) and per-domain volume
   bounded by the ring. *)
let test_concurrent_emission () =
  with_recorder (fun () ->
      let n_domains = 4 and spans_per_domain = 3000 in
      let kinds =
        Array.init n_domains (fun i ->
            Rp_trace.intern (Printf.sprintf "test.domain%d" i))
      in
      let worker i () =
        let k = kinds.(i) in
        for j = 1 to spans_per_domain do
          let s = Rp_trace.span_begin ~arg:j k in
          if j mod 7 = 0 then Rp_trace.instant ~arg:j k;
          Rp_trace.span_end ~arg:j k s
        done
      in
      let domains = Array.init n_domains (fun i -> Domain.spawn (worker i)) in
      Array.iter Domain.join domains;
      let events, torn = Rp_trace.snapshot () in
      Alcotest.(check int) "no torn records after join" 0 torn;
      Alcotest.(check bool) "events recorded" true (events <> []);
      (* Volume per domain is bounded by the ring: overwritten history is
         dropped, not accumulated. *)
      let buckets = Hashtbl.create 8 in
      List.iter
        (fun (e : Rp_trace.event) ->
          Hashtbl.replace buckets e.domain
            (1 + Option.value ~default:0 (Hashtbl.find_opt buckets e.domain)))
        events;
      Hashtbl.iter
        (fun _dom count ->
          Alcotest.(check bool) "per-domain volume bounded by ring" true
            (count <= Rp_trace.buffer_size ()))
        buckets;
      (* Each domain emitted B/E in lockstep, so a ring window can split
         at most one pair: begins and ends per domain differ by <= 1. *)
      let count dom ph =
        List.length
          (List.filter
             (fun (e : Rp_trace.event) -> e.domain = dom && e.phase = ph)
             events)
      in
      Hashtbl.iter
        (fun dom _ ->
          let b = count dom 0 and e = count dom 1 in
          Alcotest.(check bool)
            (Printf.sprintf "domain %d B/E balance (%d vs %d)" dom b e)
            true
            (abs (b - e) <= 1))
        buckets;
      (* Decoded names must all be interned ones, never garbage. *)
      List.iter
        (fun (e : Rp_trace.event) ->
          Alcotest.(check bool) "decoded name is interned" true (e.name <> "?");
          Alcotest.(check bool) "phase in range" true
            (e.phase >= 0 && e.phase <= 2))
        events)

(* --- head-sampler determinism ------------------------------------------ *)

let sampled_indices ~seed ~sample ~n =
  Rp_trace.reset ();
  Rp_trace.reset_sampler ~seed ();
  Rp_trace.configure ~sample ();
  let k = Rp_trace.intern "test.req" in
  let out = ref [] in
  for i = 0 to n - 1 do
    Rp_trace.request_begin ~arg:i k;
    if Rp_trace.sampling_now () then out := i :: !out;
    Rp_trace.request_end ()
  done;
  List.rev !out

let test_sampler_determinism () =
  with_recorder (fun () ->
      let expected seed = List.filter (fun i -> (seed + i) mod 4 = 0) (List.init 100 Fun.id) in
      let run seed = sampled_indices ~seed ~sample:4 ~n:100 in
      Alcotest.(check (list int)) "seed 0 samples every 4th from 0" (expected 0) (run 0);
      Alcotest.(check (list int)) "seed 0 is reproducible" (run 0) (run 0);
      Alcotest.(check (list int)) "seed 3 shifts the phase" (expected 3) (run 3);
      (* Counters agree with the sampled set. *)
      ignore (run 0);
      Alcotest.(check int) "trace_requests" 100 (stat_int "trace_requests");
      Alcotest.(check int) "trace_requests_sampled" 25
        (stat_int "trace_requests_sampled");
      (* sample=1 head-samples everything. *)
      Alcotest.(check int) "sample=1 samples all" 10
        (List.length (sampled_indices ~seed:0 ~sample:1 ~n:10)))

(* --- tail-trigger retention -------------------------------------------- *)

(* A request that is never head-sampled must still be retained when a
   failpoint-injected stall blows the latency budget: the request tier
   records regardless of sampling, and request_end copies the window
   into the slow log. The stall lives inside the request (the op-log
   append a SET performs), not at connection altitude. *)
let test_tail_trigger () =
  with_recorder ~sample:1_000_000 ~slow_ms:5. (fun () ->
      (* Seed past 0: a freshly reset sampler head-samples request 0
         (count 0 mod N = 0), and this test must show retention works
         with the head sampler never firing. *)
      Rp_trace.reset_sampler ~seed:1 ();
      let dir = fresh_dir () in
      let store = Memcached.Store.create ~backend:Memcached.Store.Rp () in
      let persist = Memcached.Persist.attach ~dir store in
      let path =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "rp-trace-test-%d.sock" (Unix.getpid ()))
      in
      let server =
        Memcached.Server.start ~store (Memcached.Server.Unix_socket path)
      in
      Fun.protect
        ~finally:(fun () ->
          Rp_fault.reset ();
          Memcached.Server.stop server;
          Memcached.Persist.stop persist;
          rm_rf dir)
        (fun () ->
          let client =
            Memcached.Client.connect (Memcached.Server.Unix_socket path)
          in
          Fun.protect
            ~finally:(fun () -> Memcached.Client.close client)
            (fun () ->
              (* Warm request, no stall: under budget, nothing retained
                 (scheduler noise aside — asserted via the slow entry's
                 duration below, not emptiness here). *)
              Alcotest.(check bool) "warm set" true
                (Memcached.Client.set client ~key:"fast" ~data:"v" ());
              Rp_fault.arm "persist.log.append" ~trigger:Rp_fault.Always
                ~action:(Rp_fault.Delay 0.02);
              Alcotest.(check bool) "stalled set" true
                (Memcached.Client.set client ~key:"slow" ~data:"v" ());
              Rp_fault.reset ();
              (* The server acknowledges before closing the request
                 context, so retention can land a beat after the client
                 returns: poll briefly. *)
              let deadline = Unix.gettimeofday () +. 2.0 in
              while
                stat_int "trace_slow_retained" = 0
                && Unix.gettimeofday () < deadline
              do
                Thread.delay 0.005
              done;
              let slow = Rp_trace.slow_snapshot () in
              Alcotest.(check bool) "slow log non-empty" true (slow <> []);
              let entry =
                List.fold_left
                  (fun (best : Rp_trace.slow_entry) (e : Rp_trace.slow_entry) ->
                    if e.slow_dur_ns > best.slow_dur_ns then e else best)
                  (List.hd slow) (List.tl slow)
              in
              Alcotest.(check bool) "retained request carries the stall" true
                (entry.slow_dur_ns >= 20_000_000);
              Alcotest.(check bool) "window has events" true
                (entry.slow_events <> []);
              Alcotest.(check bool) "window has the request span" true
                (List.exists
                   (fun (e : Rp_trace.event) -> e.name = "req.text")
                   entry.slow_events);
              (* Purely a tail retention: the head sampler never fired. *)
              Alcotest.(check int) "never head-sampled" 0
                (stat_int "trace_requests_sampled");
              Alcotest.(check bool) "retention counted" true
                (stat_int "trace_slow_retained" >= 1))))

(* --- Perfetto export schema -------------------------------------------- *)

let test_perfetto_schema () =
  with_recorder ~sample:1 (fun () ->
      let k_req = Rp_trace.intern "test.req" in
      let k_op = Rp_trace.intern "test.op" in
      let k_ctl = Rp_trace.intern "test.control" in
      Rp_trace.request_begin ~arg:7 k_req;
      let s = Rp_trace.span_begin_sampled ~arg:1 k_op in
      Rp_trace.instant_sampled k_op;
      Rp_trace.span_end_sampled k_op s;
      Rp_trace.request_end ();
      ignore (Rp_trace.with_span k_ctl (fun () -> 42));
      let json = Rp_trace.export_json () in
      let doc = Trend.parse json in
      let events =
        match Trend.member "traceEvents" doc with
        | Some (Trend.List l) -> l
        | _ -> Alcotest.fail "traceEvents missing or not a list"
      in
      (* request B/E, one detail X (begin+end merged), one instant, and
         the control span's B/E. *)
      Alcotest.(check bool) "at least the 6 emitted events" true
        (List.length events >= 6);
      (match Trend.member "otherData" doc with
      | Some o ->
          Alcotest.(check bool) "torn count exported as 0" true
            (Trend.member "torn" o = Some (Trend.Num 0.))
      | None -> Alcotest.fail "otherData missing");
      let str_field name ev =
        match Trend.member name ev with
        | Some (Trend.Str s) -> s
        | _ -> Alcotest.fail (Printf.sprintf "event field %s not a string" name)
      in
      let num_field name ev =
        match Trend.member name ev with
        | Some (Trend.Num n) -> n
        | _ -> Alcotest.fail (Printf.sprintf "event field %s not a number" name)
      in
      let last_ts = ref neg_infinity in
      let depth = Hashtbl.create 4 in
      List.iter
        (fun ev ->
          let ph = str_field "ph" ev in
          Alcotest.(check bool) "ph is B/E/X/i" true
            (ph = "B" || ph = "E" || ph = "X" || ph = "i");
          if ph = "X" then
            Alcotest.(check bool) "X event carries a dur" true
              (num_field "dur" ev >= 0.);
          Alcotest.(check bool) "name non-empty" true (str_field "name" ev <> "");
          Alcotest.(check bool) "pid present" true (num_field "pid" ev = 1.);
          let ts = num_field "ts" ev in
          Alcotest.(check bool) "ts monotone non-decreasing" true
            (ts >= !last_ts);
          last_ts := ts;
          let tid = num_field "tid" ev in
          let d = Option.value ~default:0 (Hashtbl.find_opt depth tid) in
          (match ph with
          | "B" -> Hashtbl.replace depth tid (d + 1)
          | "E" ->
              Alcotest.(check bool) "E never underflows its tid's stack" true
                (d > 0);
              Hashtbl.replace depth tid (d - 1)
          | _ -> ()))
        events;
      Hashtbl.iter
        (fun tid d ->
          Alcotest.(check int)
            (Printf.sprintf "tid %g B/E pairs matched" tid)
            0 d)
        depth)

(* --- end-to-end: pipelined GETs through the event loop ----------------- *)

(* The acceptance path: a fully-sampled pipelined batch through the
   sharded event loop, with persistence attached and a QSBR store small
   enough to resize under load, must leave spans from all three planes
   in one export — with the request spans nested under the batch
   dispatch span and detail spans nested under their request. *)
let test_evloop_end_to_end () =
  with_recorder ~sample:1 ~slow_ms:1e6 (fun () ->
      let dir = fresh_dir () in
      let store =
        Memcached.Store.create ~backend:Memcached.Store.Rp
          ~rcu_mode:Memcached.Store.Qsbr ~initial_size:8 ()
      in
      let persist =
        Memcached.Persist.attach ~fsync:Rp_persist.Oplog.Never ~dir store
      in
      let path =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "rp-trace-ev-%d.sock" (Unix.getpid ()))
      in
      let config =
        {
          Memcached.Server.default_config with
          Memcached.Server.mode = Memcached.Server.Event_loop;
          workers = 1;
        }
      in
      let server =
        Memcached.Server.start ~store ~config (Memcached.Server.Unix_socket path)
      in
      Fun.protect
        ~finally:(fun () ->
          Memcached.Server.stop server;
          Memcached.Persist.stop persist;
          rm_rf dir)
        (fun () ->
          let client =
            Memcached.Client.connect (Memcached.Server.Unix_socket path)
          in
          (* Enough distinct keys to force expansion of the 8-bucket
             table (grace periods) and feed the op log. *)
          for i = 0 to 127 do
            ignore
              (Memcached.Client.set client
                 ~key:(Printf.sprintf "k%d" i)
                 ~data:(Printf.sprintf "v%d" i)
                 ())
          done;
          Memcached.Client.close client;
          (* One write, 32 pipelined GETs plus quit: a single fill, a
             single batch dispatch. *)
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX path);
          let burst =
            String.concat ""
              (List.init 32 (fun i -> Printf.sprintf "get k%d\r\n" i))
            ^ "quit\r\n"
          in
          ignore (Unix.write_substring fd burst 0 (String.length burst));
          let buf = Buffer.create 4096 in
          let chunk = Bytes.create 4096 in
          let rec drain () =
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> ()
            | n ->
                Buffer.add_subbytes buf chunk 0 n;
                drain ()
            | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
          in
          drain ();
          Unix.close fd;
          let body = Buffer.contents buf in
          let values = ref 0 in
          let i = ref 0 in
          while
            match String.index_from_opt body !i 'V' with
            | Some j when j + 6 <= String.length body ->
                if String.sub body j 6 = "VALUE " then incr values;
                i := j + 1;
                true
            | _ -> false
          do
            ()
          done;
          Alcotest.(check int) "all 32 pipelined GETs answered" 32 !values;
          let events, _torn = Rp_trace.snapshot () in
          (* Serving plane. *)
          Alcotest.(check bool) "conn.dispatch span" true
            (has_name events "conn.dispatch");
          Alcotest.(check bool) "req.text span" true (has_name events "req.text");
          Alcotest.(check bool) "conn.fill span" true
            (has_name events "conn.fill");
          (* RCU plane: detail-tier lookups, and a grace period from the
             8-bucket table expanding under 128 inserts. *)
          Alcotest.(check bool) "rp_ht lookup/insert spans" true
            (has_name events "rp_ht.lookup" || has_name events "rp_ht.insert");
          Alcotest.(check bool) "grace-period span" true
            (has_name events "qsbr.gp" || has_name events "rcu.gp");
          (* Persistence plane. *)
          Alcotest.(check bool) "persist.append span" true
            (has_name events "persist.append");
          (* Nesting: a request B record whose parent is a live batch
             dispatch span on the same domain... *)
          let find_b name =
            List.filter
              (fun (e : Rp_trace.event) -> e.name = name && e.phase = 0)
              events
          in
          let batches = find_b "conn.dispatch" in
          let reqs = find_b "req.text" in
          let nested_req =
            List.exists
              (fun (r : Rp_trace.event) ->
                List.exists
                  (fun (b : Rp_trace.event) ->
                    b.span = r.parent && b.domain = r.domain)
                  batches)
              reqs
          in
          Alcotest.(check bool) "request nests under batch dispatch" true
            nested_req;
          (* ... and a detail span (a complete X record) whose parent is
             a request span and whose trace id is that same request. *)
          let find_x name =
            List.filter
              (fun (e : Rp_trace.event) -> e.name = name && e.phase = 3)
              events
          in
          let details =
            find_x "store.read_section" @ find_x "rp_ht.lookup"
          in
          let nested_detail =
            List.exists
              (fun (d : Rp_trace.event) ->
                List.exists
                  (fun (r : Rp_trace.event) ->
                    r.span = d.parent && r.span = d.trace)
                  reqs)
              details
          in
          Alcotest.(check bool) "detail span nests under its request" true
            nested_detail;
          (* The export of the same window must be loadable JSON. *)
          let doc = Trend.parse (Rp_trace.export_json ()) in
          match Trend.member "traceEvents" doc with
          | Some (Trend.List l) ->
              Alcotest.(check bool) "export non-empty" true (l <> [])
          | _ -> Alcotest.fail "export not loadable"))

(* --- fully-sampled overhead guard -------------------------------------- *)

(* The 1-in-1024 guard lives in test_obs (<= 1.15x). This one bounds the
   worst case: every lookup inside a head-sampled request pays two
   records (B/E) with two clock reads. Alternate fully-sampled and
   kill-switched trials, keep the minimum of each side, bound the ratio
   at 1.5x. *)
(* Worst-case read overhead: every request head-sampled, so every lookup
   pays a full detail span (one cycle-counter read at begin, one at end,
   one 9-word X record at end). The baseline is a memcached-shaped
   lookup — string keys over a table much larger than cache, visited in
   a scattered order — because that is what the span cost dilutes into
   in production; a tiny cache-hot table would price the tracer against
   a lookup an order of magnitude cheaper than any the server serves. *)
let test_full_sample_overhead () =
  let entries = 262_144 in
  let keys = Array.init entries (Printf.sprintf "key:%08d") in
  let table =
    Rp_ht.create ~initial_size:entries ~auto_resize:false
      ~hash:Rp_hashes.Hashfn.fnv1a_string ~equal:String.equal ()
  in
  Array.iteri (fun i k -> Rp_ht.insert table k i) keys;
  let iters = 200_000 in
  (* Golden-ratio stride: deterministic, co-prime with the pow2 table, so
     consecutive lookups land on unrelated buckets (no prefetch help). *)
  let order =
    Array.init iters (fun i -> i * 2654435761 land (entries - 1))
  in
  let time_lookups () =
    let start = Unix.gettimeofday () in
    for i = 0 to iters - 1 do
      ignore (Rp_ht.find table (Array.unsafe_get keys (Array.unsafe_get order i)))
    done;
    Unix.gettimeofday () -. start
  in
  with_recorder ~sample:1 ~slow_ms:1e9 (fun () ->
      let k_req = Rp_trace.intern "test.overhead" in
      ignore (time_lookups ());
      (* warm up *)
      let sampled = ref infinity and off = ref infinity in
      for _ = 1 to 7 do
        Rp_trace.set_enabled true;
        Rp_trace.request_begin k_req;
        sampled := Float.min !sampled (time_lookups ());
        Rp_trace.request_end ();
        Rp_trace.set_enabled false;
        off := Float.min !off (time_lookups ())
      done;
      let ratio = !sampled /. !off in
      Printf.printf "fully-sampled overhead: %.0f vs %.0f ns/op (ratio %.3f)\n%!"
        (!sampled *. 1e9 /. float_of_int iters)
        (!off *. 1e9 /. float_of_int iters)
        ratio;
      Alcotest.(check bool)
        (Printf.sprintf "fully sampled/disabled = %.3f <= 1.5" ratio)
        true (ratio <= 1.5))

let () =
  Alcotest.run "rp_trace"
    [
      ( "core",
        [
          Alcotest.test_case "concurrent multi-domain emission" `Quick
            test_concurrent_emission;
          Alcotest.test_case "sampler determinism" `Quick
            test_sampler_determinism;
          Alcotest.test_case "perfetto export schema" `Quick
            test_perfetto_schema;
        ] );
      ( "integration",
        [
          Alcotest.test_case "tail-trigger retention" `Quick test_tail_trigger;
          Alcotest.test_case "evloop end-to-end spans" `Quick
            test_evloop_end_to_end;
          Alcotest.test_case "fully-sampled overhead" `Slow
            test_full_sample_overhead;
        ] );
    ]
