(* Unit and property tests for the resizable relativistic hash table. *)

let make ?(initial_size = 8) ?(auto_resize = false) () =
  Rp_ht.create ~initial_size ~auto_resize ~hash:Rp_hashes.Hashfn.of_int
    ~equal:Int.equal ()

let make_str ?(initial_size = 8) ?(auto_resize = false) () =
  Rp_ht.create ~initial_size ~auto_resize ~hash:Rp_hashes.Hashfn.fnv1a_string
    ~equal:String.equal ()

let check_valid t =
  match Rp_ht.validate t with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invariant violated: %s" msg

let test_empty () =
  let t = make () in
  Alcotest.(check (option int)) "find on empty" None (Rp_ht.find t 42);
  Alcotest.(check int) "length" 0 (Rp_ht.length t);
  Alcotest.(check int) "size" 8 (Rp_ht.size t);
  check_valid t

let test_insert_find () =
  let t = make () in
  Rp_ht.insert t 1 "one";
  Rp_ht.insert t 2 "two";
  Rp_ht.insert t 3 "three";
  Alcotest.(check (option string)) "find 1" (Some "one") (Rp_ht.find t 1);
  Alcotest.(check (option string)) "find 2" (Some "two") (Rp_ht.find t 2);
  Alcotest.(check (option string)) "find 3" (Some "three") (Rp_ht.find t 3);
  Alcotest.(check (option string)) "find 4" None (Rp_ht.find t 4);
  Alcotest.(check int) "length" 3 (Rp_ht.length t);
  check_valid t

let test_insert_shadows () =
  let t = make () in
  Rp_ht.insert t 7 "old";
  Rp_ht.insert t 7 "new";
  Alcotest.(check (option string)) "newest wins" (Some "new") (Rp_ht.find t 7);
  Alcotest.(check int) "both bindings counted" 2 (Rp_ht.length t);
  Alcotest.(check bool) "remove newest" true (Rp_ht.remove t 7);
  Alcotest.(check (option string)) "old resurfaces" (Some "old") (Rp_ht.find t 7);
  check_valid t

let test_replace () =
  let t = make () in
  Rp_ht.replace t 7 "a";
  Rp_ht.replace t 7 "b";
  Alcotest.(check (option string)) "replaced" (Some "b") (Rp_ht.find t 7);
  Alcotest.(check int) "single binding" 1 (Rp_ht.length t);
  check_valid t

let test_remove () =
  let t = make () in
  for i = 0 to 9 do
    Rp_ht.insert t i (string_of_int i)
  done;
  Alcotest.(check bool) "remove present" true (Rp_ht.remove t 5);
  Alcotest.(check bool) "remove absent" false (Rp_ht.remove t 5);
  Alcotest.(check (option string)) "gone" None (Rp_ht.find t 5);
  Alcotest.(check int) "length" 9 (Rp_ht.length t);
  Rcu.barrier (Rp_ht.rcu t);
  check_valid t

let test_remove_sync () =
  let t = make () in
  Rp_ht.insert t 1 "x";
  Alcotest.(check bool) "removed" true (Rp_ht.remove_sync t 1);
  Alcotest.(check (option string)) "gone" None (Rp_ht.find t 1);
  check_valid t

let test_expand_preserves () =
  let t = make ~initial_size:4 () in
  for i = 0 to 99 do
    Rp_ht.insert t i (string_of_int (i * i))
  done;
  Rp_ht.resize t 64;
  Alcotest.(check int) "size" 64 (Rp_ht.size t);
  for i = 0 to 99 do
    Alcotest.(check (option string))
      (Printf.sprintf "find %d after expand" i)
      (Some (string_of_int (i * i)))
      (Rp_ht.find t i)
  done;
  check_valid t;
  let stats = Rp_ht.resize_stats t in
  Alcotest.(check int) "expands" 4 stats.expands

let test_shrink_preserves () =
  let t = make ~initial_size:64 () in
  for i = 0 to 99 do
    Rp_ht.insert t i (string_of_int (i * 7))
  done;
  Rp_ht.resize t 4;
  Alcotest.(check int) "size" 4 (Rp_ht.size t);
  for i = 0 to 99 do
    Alcotest.(check (option string))
      (Printf.sprintf "find %d after shrink" i)
      (Some (string_of_int (i * 7)))
      (Rp_ht.find t i)
  done;
  check_valid t;
  let stats = Rp_ht.resize_stats t in
  Alcotest.(check int) "shrinks" 4 stats.shrinks

let test_resize_roundtrip () =
  let t = make_str ~initial_size:8 () in
  for i = 0 to 199 do
    Rp_ht.insert t (Printf.sprintf "key-%d" i) i
  done;
  Rp_ht.resize t 256;
  check_valid t;
  Rp_ht.resize t 8;
  check_valid t;
  Rp_ht.resize t 128;
  check_valid t;
  for i = 0 to 199 do
    Alcotest.(check (option int))
      "value survives round trips" (Some i)
      (Rp_ht.find t (Printf.sprintf "key-%d" i))
  done

let test_resize_clamps () =
  let t =
    Rp_ht.create ~initial_size:16 ~min_size:8 ~max_size:32 ~auto_resize:false
      ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal ()
  in
  Rp_ht.resize t 1;
  Alcotest.(check int) "clamped to min" 8 (Rp_ht.size t);
  Rp_ht.resize t 4096;
  Alcotest.(check int) "clamped to max" 32 (Rp_ht.size t)

let test_auto_resize_grows () =
  let t =
    Rp_ht.create ~initial_size:4 ~auto_resize:true ~hash:Rp_hashes.Hashfn.of_int
      ~equal:Int.equal ()
  in
  for i = 0 to 999 do
    Rp_ht.insert t i i
  done;
  Alcotest.(check bool) "table grew" true (Rp_ht.size t >= 1024);
  check_valid t

let test_auto_resize_shrinks () =
  let t =
    Rp_ht.create ~initial_size:4 ~min_size:4 ~auto_resize:true
      ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal ()
  in
  for i = 0 to 999 do
    Rp_ht.insert t i i
  done;
  let grown = Rp_ht.size t in
  for i = 0 to 999 do
    ignore (Rp_ht.remove t i)
  done;
  Rcu.barrier (Rp_ht.rcu t);
  Alcotest.(check bool) "table shrank" true (Rp_ht.size t < grown);
  check_valid t

let test_move () =
  let t = make () in
  Rp_ht.insert t 1 "payload";
  Alcotest.(check bool) "moved" true (Rp_ht.move t ~from_key:1 ~to_key:2 Fun.id);
  Alcotest.(check (option string)) "source gone" None (Rp_ht.find t 1);
  Alcotest.(check (option string)) "dest bound" (Some "payload") (Rp_ht.find t 2);
  Alcotest.(check bool) "move absent" false (Rp_ht.move t ~from_key:1 ~to_key:3 Fun.id);
  Rcu.barrier (Rp_ht.rcu t);
  check_valid t

let test_move_transforms () =
  let t = make () in
  Rp_ht.insert t 1 "abc";
  ignore (Rp_ht.move t ~from_key:1 ~to_key:9 String.uppercase_ascii);
  Alcotest.(check (option string)) "transformed" (Some "ABC") (Rp_ht.find t 9);
  Rcu.barrier (Rp_ht.rcu t);
  check_valid t

let test_iter_fold () =
  let t = make () in
  for i = 0 to 49 do
    Rp_ht.insert t i i
  done;
  let sum = Rp_ht.fold t ~init:0 ~f:(fun acc _ v -> acc + v) in
  Alcotest.(check int) "fold sum" (49 * 50 / 2) sum;
  let seen = ref 0 in
  Rp_ht.iter t ~f:(fun _ _ -> incr seen);
  Alcotest.(check int) "iter count" 50 !seen

let test_iter_no_duplicates_after_resize () =
  let t = make ~initial_size:4 () in
  for i = 0 to 99 do
    Rp_ht.insert t i i
  done;
  Rp_ht.resize t 128;
  let seen = Hashtbl.create 128 in
  Rp_ht.iter t ~f:(fun k _ ->
      if Hashtbl.mem seen k then Alcotest.failf "key %d seen twice" k;
      Hashtbl.add seen k ());
  Alcotest.(check int) "all seen" 100 (Hashtbl.length seen)

let test_bucket_lengths () =
  let t = make ~initial_size:8 () in
  for i = 0 to 79 do
    Rp_ht.insert t i i
  done;
  let lengths = Rp_ht.bucket_lengths t in
  Alcotest.(check int) "bucket count" 8 (Array.length lengths);
  Alcotest.(check int) "total" 80 (Array.fold_left ( + ) 0 lengths)

let test_find_opt_hashed () =
  let t = make_str () in
  Rp_ht.insert t "hello" 5;
  let hash = Rp_hashes.Hashfn.fnv1a_string "hello" in
  Alcotest.(check (option int)) "hashed find" (Some 5)
    (Rp_ht.find_opt_hashed t ~hash "hello")

let test_load_factor () =
  let t = make ~initial_size:16 () in
  for i = 0 to 7 do
    Rp_ht.insert t i i
  done;
  Alcotest.(check (float 1e-9)) "load factor" 0.5 (Rp_ht.load_factor t)

let test_stripe_rounding () =
  let t = make ~initial_size:8 () in
  (* Default stripe count is [min 8 min_size]; min_size defaults to 4. *)
  Alcotest.(check int) "default stripes" 4 (Rp_ht.stripe_count t);
  let t2 =
    Rp_ht.create ~initial_size:8 ~stripes:3 ~hash:Rp_hashes.Hashfn.of_int
      ~equal:Int.equal ()
  in
  Alcotest.(check int) "rounded to power of two" 4 (Rp_ht.stripe_count t2);
  let t3 =
    Rp_ht.create ~initial_size:8 ~stripes:16 ~hash:Rp_hashes.Hashfn.of_int
      ~equal:Int.equal ()
  in
  Alcotest.(check int) "explicit stripes" 16 (Rp_ht.stripe_count t3);
  (* Stripes must divide every reachable size, so min_size was raised. *)
  Rp_ht.resize t3 1;
  Alcotest.(check bool) "min_size raised to stripes" true (Rp_ht.size t3 >= 16)

(* Lazy rehash leaves the table half-split: the auto-resize expansion
   publishes the larger array and returns, so buckets not yet touched by a
   writer still await their split. A batched walk over that state must see
   every binding (home-bucket filtering tolerates imprecise chains). *)
let test_iter_batched_half_split () =
  let t =
    Rp_ht.create ~initial_size:8 ~min_size:8 ~auto_resize:true
      ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal ()
  in
  let n = 400 in
  for i = 0 to n - 1 do
    Rp_ht.insert t i i
  done;
  Alcotest.(check bool) "walk starts half-split" true (Rp_ht.pending_splits t > 0);
  let seen = Hashtbl.create n in
  let restarts =
    Rp_ht.iter_batched ~batch:4 t ~f:(fun k v ->
        if v <> k then Alcotest.failf "key %d bound to %d" k v;
        Hashtbl.replace seen k ())
  in
  Alcotest.(check int) "no shrink, no restarts" 0 restarts;
  Alcotest.(check int) "every binding seen" n (Hashtbl.length seen);
  (* The walk is read-only: it must not have completed any split. *)
  Alcotest.(check bool) "still half-split" true (Rp_ht.pending_splits t > 0);
  Rp_ht.complete_splits t;
  Alcotest.(check int) "splits drained" 0 (Rp_ht.pending_splits t);
  check_valid t

(* --- model-based property tests --- *)

type op = Insert of int * int | Remove of int | Replace of int * int | Resize of int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map2 (fun k v -> Insert (k, v)) (int_bound 100) (int_bound 1000));
        (2, map (fun k -> Remove k) (int_bound 100));
        (2, map2 (fun k v -> Replace (k, v)) (int_bound 100) (int_bound 1000));
        (1, map (fun s -> Resize (1 lsl s)) (int_bound 8));
      ])

let show_op = function
  | Insert (k, v) -> Printf.sprintf "Insert (%d, %d)" k v
  | Remove k -> Printf.sprintf "Remove %d" k
  | Replace (k, v) -> Printf.sprintf "Replace (%d, %d)" k v
  | Resize n -> Printf.sprintf "Resize %d" n

(* Reference model: newest-first association list. *)
let model_apply model = function
  | Insert (k, v) -> (k, v) :: model
  | Remove k ->
      let rec drop_first = function
        | [] -> []
        | (k', _) :: rest when k' = k -> rest
        | kv :: rest -> kv :: drop_first rest
      in
      drop_first model
  | Replace (k, v) ->
      (* replace updates only the newest (first) binding, or inserts *)
      if List.mem_assoc k model then begin
        let rec update = function
          | [] -> []
          | (k', _) :: rest when k' = k -> (k', v) :: rest
          | kv :: rest -> kv :: update rest
        in
        update model
      end
      else (k, v) :: model
  | Resize _ -> model

let table_apply t = function
  | Insert (k, v) -> Rp_ht.insert t k v
  | Remove k -> ignore (Rp_ht.remove t k)
  | Replace (k, v) -> Rp_ht.replace t k v
  | Resize n -> Rp_ht.resize t n

let prop_matches_model =
  QCheck.Test.make ~name:"table matches model under random ops" ~count:200
    (QCheck.make ~print:(fun l -> String.concat "; " (List.map show_op l))
       QCheck.Gen.(list_size (int_bound 80) op_gen))
    (fun ops ->
      let t = make ~initial_size:4 () in
      let model = List.fold_left model_apply [] ops in
      List.iter (table_apply t) ops;
      Rcu.barrier (Rp_ht.rcu t);
      (match Rp_ht.validate t with
      | Ok () -> ()
      | Error msg -> QCheck.Test.fail_reportf "invariant: %s" msg);
      List.for_all
        (fun k ->
          let expected = List.assoc_opt k model in
          let got = Rp_ht.find t k in
          if expected <> got then
            QCheck.Test.fail_reportf "key %d: model %s, table %s" k
              (match expected with Some v -> string_of_int v | None -> "None")
              (match got with Some v -> string_of_int v | None -> "None")
          else true)
        (List.init 101 Fun.id))

let prop_resize_preserves_all =
  QCheck.Test.make ~name:"any resize sequence preserves contents" ~count:100
    QCheck.(pair (list_of_size Gen.(int_range 1 6) (int_range 0 9)) (int_range 0 50))
    (fun (size_exps, n_keys) ->
      let t = make ~initial_size:8 () in
      for i = 0 to n_keys - 1 do
        Rp_ht.insert t i i
      done;
      List.iter (fun e -> Rp_ht.resize t (1 lsl e)) size_exps;
      (match Rp_ht.validate t with
      | Ok () -> ()
      | Error msg -> QCheck.Test.fail_reportf "invariant: %s" msg);
      List.for_all (fun i -> Rp_ht.find t i = Some i) (List.init n_keys Fun.id))

let qcheck_tests =
  List.map (QCheck_alcotest.to_alcotest ~long:false)
    [ prop_matches_model; prop_resize_preserves_all ]

let () =
  Alcotest.run "rp_ht"
    [
      ( "basic",
        [
          Alcotest.test_case "empty table" `Quick test_empty;
          Alcotest.test_case "insert and find" `Quick test_insert_find;
          Alcotest.test_case "insert shadows" `Quick test_insert_shadows;
          Alcotest.test_case "replace" `Quick test_replace;
          Alcotest.test_case "remove" `Quick test_remove;
          Alcotest.test_case "remove_sync" `Quick test_remove_sync;
          Alcotest.test_case "iter and fold" `Quick test_iter_fold;
          Alcotest.test_case "bucket lengths" `Quick test_bucket_lengths;
          Alcotest.test_case "find_opt_hashed" `Quick test_find_opt_hashed;
          Alcotest.test_case "load factor" `Quick test_load_factor;
        ] );
      ( "resize",
        [
          Alcotest.test_case "expand preserves contents" `Quick test_expand_preserves;
          Alcotest.test_case "shrink preserves contents" `Quick test_shrink_preserves;
          Alcotest.test_case "resize round trips" `Quick test_resize_roundtrip;
          Alcotest.test_case "resize clamps to bounds" `Quick test_resize_clamps;
          Alcotest.test_case "auto-resize grows" `Quick test_auto_resize_grows;
          Alcotest.test_case "auto-resize shrinks" `Quick test_auto_resize_shrinks;
          Alcotest.test_case "iter sees no duplicates after resize" `Quick
            test_iter_no_duplicates_after_resize;
          Alcotest.test_case "stripe rounding" `Quick test_stripe_rounding;
          Alcotest.test_case "iter_batched over half-split table" `Quick
            test_iter_batched_half_split;
        ] );
      ( "move",
        [
          Alcotest.test_case "move rebinds" `Quick test_move;
          Alcotest.test_case "move transforms value" `Quick test_move_transforms;
        ] );
      ("properties", qcheck_tests);
    ]
